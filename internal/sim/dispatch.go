package sim

import (
	"morrigan/internal/arch"
	"morrigan/internal/core"
	"morrigan/internal/icache"
	"morrigan/internal/tlbprefetch"
)

// This file devirtualizes the two prefetcher plug-in points on the
// per-instruction hot path. Config still accepts the tlbprefetch.Prefetcher
// and icache.Prefetcher interfaces, but New resolves the concrete
// implementation once, at construction, into a small kind tag plus a typed
// pointer; every subsequent OnMiss/OnPrefetchHit/OnFetch call is a switch on
// the tag followed by a direct (inlinable, non-interface) method call.
// Implementations the switch does not know — test fakes, future external
// prefetchers — fall back to ordinary interface dispatch, so behaviour is
// identical either way.

// linesPerPage is the number of cache lines per 4 KB page, shared by the
// I-cache prefetch paths.
const linesPerPage = arch.PageSize / arch.LineSize

// pfKind tags the concrete iSTLB prefetcher implementation.
type pfKind uint8

// iSTLB prefetcher kinds, mirroring machine.PrefetcherSpec's vocabulary.
const (
	pfIface pfKind = iota // unknown implementation: interface dispatch
	pfNone
	pfSP
	pfASP
	pfDP
	pfMP
	pfUMP
	pfMorrigan
)

// pfDispatch is the devirtualized iSTLB-prefetcher call site.
type pfDispatch struct {
	kind  pfKind
	iface tlbprefetch.Prefetcher // always non-nil; Name and the fallback path
	sp    *tlbprefetch.SP
	asp   *tlbprefetch.ASP
	dp    *tlbprefetch.DP
	mp    *tlbprefetch.MP
	ump   *tlbprefetch.UnboundedMP
	mor   *core.Morrigan
}

// newPFDispatch resolves pf (nil = no prefetching) to its concrete kind.
func newPFDispatch(pf tlbprefetch.Prefetcher) pfDispatch {
	if pf == nil {
		pf = tlbprefetch.None{}
	}
	d := pfDispatch{kind: pfIface, iface: pf}
	switch p := pf.(type) {
	case tlbprefetch.None:
		d.kind = pfNone
	case *tlbprefetch.SP:
		d.kind, d.sp = pfSP, p
	case *tlbprefetch.ASP:
		d.kind, d.asp = pfASP, p
	case *tlbprefetch.DP:
		d.kind, d.dp = pfDP, p
	case *tlbprefetch.MP:
		d.kind, d.mp = pfMP, p
	case *tlbprefetch.UnboundedMP:
		d.kind, d.ump = pfUMP, p
	case *core.Morrigan:
		d.kind, d.mor = pfMorrigan, p
	}
	return d
}

// OnMiss forwards the iSTLB miss to the concrete prefetcher.
func (d *pfDispatch) OnMiss(tid arch.ThreadID, pc arch.VAddr, vpn arch.VPN) []tlbprefetch.Request {
	switch d.kind {
	case pfNone:
		return nil
	case pfSP:
		return d.sp.OnMiss(tid, pc, vpn)
	case pfASP:
		return d.asp.OnMiss(tid, pc, vpn)
	case pfDP:
		return d.dp.OnMiss(tid, pc, vpn)
	case pfMP:
		return d.mp.OnMiss(tid, pc, vpn)
	case pfUMP:
		return d.ump.OnMiss(tid, pc, vpn)
	case pfMorrigan:
		return d.mor.OnMiss(tid, pc, vpn)
	}
	return d.iface.OnMiss(tid, pc, vpn)
}

// OnPrefetchHit credits the producing prefetcher for a PB hit.
func (d *pfDispatch) OnPrefetchHit(token tlbprefetch.Token) {
	switch d.kind {
	case pfNone:
	case pfSP:
		d.sp.OnPrefetchHit(token)
	case pfASP:
		d.asp.OnPrefetchHit(token)
	case pfDP:
		d.dp.OnPrefetchHit(token)
	case pfMP:
		d.mp.OnPrefetchHit(token)
	case pfUMP:
		d.ump.OnPrefetchHit(token)
	case pfMorrigan:
		d.mor.OnPrefetchHit(token)
	default:
		d.iface.OnPrefetchHit(token)
	}
}

// Flush clears prefetcher state on a context switch.
func (d *pfDispatch) Flush() {
	switch d.kind {
	case pfNone:
	case pfSP:
		d.sp.Flush()
	case pfASP:
		d.asp.Flush()
	case pfDP:
		d.dp.Flush()
	case pfMP:
		d.mp.Flush()
	case pfUMP:
		d.ump.Flush()
	case pfMorrigan:
		d.mor.Flush()
	default:
		d.iface.Flush()
	}
}

// ResetStats clears the prefetcher's interval statistics at the
// warmup/measure boundary. Of the built-in kinds only Morrigan keeps any
// (its IRIP/SDP hit attribution); unknown implementations get the optional
// ResetStats interface probe the field-based dispatch used to apply.
func (d *pfDispatch) ResetStats() {
	switch d.kind {
	case pfMorrigan:
		d.mor.ResetStats()
	case pfIface:
		if m, ok := d.iface.(interface{ ResetStats() }); ok {
			m.ResetStats()
		}
	}
}

// moduleHits returns Morrigan's per-module PB-hit attribution, when the
// prefetcher exposes it.
func (d *pfDispatch) moduleHits() (irip, sdp uint64, ok bool) {
	switch d.kind {
	case pfMorrigan:
		return d.mor.IRIPHits(), d.mor.SDPHits(), true
	case pfIface:
		if m, ok := d.iface.(interface {
			IRIPHits() uint64
			SDPHits() uint64
		}); ok {
			return m.IRIPHits(), m.SDPHits(), true
		}
	}
	return 0, 0, false
}

// Devirtualized reports whether the iSTLB- and I-cache-prefetcher call sites
// resolved to concrete fast paths at construction; false means the
// implementation was unknown to the dispatch switch and runs through
// interface calls. Every prefetcher a machine.Spec can name resolves
// concretely (asserted by the machine package's tests).
func (s *Simulator) Devirtualized() (pf, icachePF bool) {
	return s.pf.kind != pfIface, s.icpf.kind != icIface
}

// icKind tags the concrete I-cache prefetcher implementation.
type icKind uint8

// I-cache prefetcher kinds, mirroring machine.ICacheSpec's vocabulary.
const (
	icIface icKind = iota // unknown implementation: interface dispatch
	icNextLine
	icFNLMMA
	icEPI
	icDJolt
)

// icDispatch is the devirtualized I-cache-prefetcher call site. The baseline
// next-line policy is stateless, so it is inlined here outright with a
// reusable one-element output buffer instead of calling into icache.NextLine
// (whose interface-shaped OnFetch allocates its result).
type icDispatch struct {
	kind  icKind
	iface icache.Prefetcher // always non-nil; Name and the fallback path
	fnl   *icache.FNLMMA
	epi   *icache.EPI
	dj    *icache.DJolt
	nlOut [1]uint64
}

// newICDispatch resolves icpf (nil = baseline next-line) to its concrete
// kind.
func newICDispatch(icpf icache.Prefetcher) icDispatch {
	if icpf == nil {
		icpf = icache.NextLine{}
	}
	d := icDispatch{kind: icIface, iface: icpf}
	switch p := icpf.(type) {
	case icache.NextLine:
		d.kind = icNextLine
	case *icache.FNLMMA:
		d.kind, d.fnl = icFNLMMA, p
	case *icache.EPI:
		d.kind, d.epi = icEPI, p
	case *icache.DJolt:
		d.kind, d.dj = icDJolt, p
	}
	return d
}

// OnFetch forwards a fetched line to the concrete prefetcher and returns its
// prefetch candidates. The returned slice is only valid until the next call.
func (d *icDispatch) OnFetch(line uint64, miss bool) []uint64 {
	switch d.kind {
	case icNextLine:
		// icache.NextLine inlined: the following line, unless it crosses a
		// page boundary.
		if line/linesPerPage != (line+1)/linesPerPage {
			return nil
		}
		d.nlOut[0] = line + 1
		return d.nlOut[:]
	case icFNLMMA:
		return d.fnl.OnFetch(line, miss)
	case icEPI:
		return d.epi.OnFetch(line, miss)
	case icDJolt:
		return d.dj.OnFetch(line, miss)
	}
	return d.iface.OnFetch(line, miss)
}

// Flush clears predictor state on a context switch.
func (d *icDispatch) Flush() {
	switch d.kind {
	case icNextLine:
	case icFNLMMA:
		d.fnl.Flush()
	case icEPI:
		d.epi.Flush()
	case icDJolt:
		d.dj.Flush()
	default:
		d.iface.Flush()
	}
}
