package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"morrigan/internal/runner"
	"morrigan/internal/telemetry"
)

// finishQuickJobs retires n successful jobs with the given elapsed time,
// seeding the straggler detector's duration history.
func finishQuickJobs(srv *Server, n int, elapsed time.Duration) {
	for i := 0; i < n; i++ {
		job := runner.Job{Experiment: "obs", Config: "quick", Workload: "wl"}
		probe := telemetry.NewProbe(telemetry.Config{EventBuffer: -1})
		srv.JobStarted(1000+i, job, probe)
		srv.JobFinished(1000+i, runner.Result{Job: job, Elapsed: elapsed})
	}
}

// TestStragglerDetection seeds the detector with fast completed jobs, leaves
// one job running past k× their p95, and asserts it is flagged in /campaign,
// counted in /metrics, and announced exactly once on the SSE stream.
func TestStragglerDetection(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sub, cancel := srv.hub.subscribe()
	defer cancel()

	srv.CampaignStarted(stragglerMinSamples + 1)
	finishQuickJobs(srv, stragglerMinSamples, time.Millisecond)

	slow := runner.Job{Experiment: "obs", Config: "slow", Workload: "wl"}
	srv.JobStarted(0, slow, telemetry.NewProbe(telemetry.Config{EventBuffer: -1}))
	// p95 of four 1ms jobs is 1ms; threshold = 3ms. Outlive it decisively.
	time.Sleep(25 * time.Millisecond)

	var st campaignStatus
	if err := json.Unmarshal(get(t, ts, "/campaign"), &st); err != nil {
		t.Fatal(err)
	}
	wantThreshold := DefaultStragglerK * 0.001
	if diff := st.StragglerThresholdSeconds - wantThreshold; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("straggler_threshold_seconds = %v, want %v", st.StragglerThresholdSeconds, wantThreshold)
	}
	if len(st.Stragglers) != 1 || st.Stragglers[0] != slow.Name() {
		t.Errorf("stragglers = %v, want [%s]", st.Stragglers, slow.Name())
	}
	flagged := 0
	for _, lj := range st.Active {
		if lj.Straggler {
			flagged++
		}
	}
	if flagged != 1 {
		t.Errorf("active jobs flagged = %d, want 1", flagged)
	}

	vals, err := ParseExposition(strings.NewReader(string(get(t, ts, "/metrics"))))
	if err != nil {
		t.Fatal(err)
	}
	if got := vals["morrigan_campaign_stragglers"]; got != 1 {
		t.Errorf("morrigan_campaign_stragglers = %v, want 1", got)
	}
	if got := vals["morrigan_campaign_straggler_threshold_seconds"]; got <= 0 {
		t.Errorf("morrigan_campaign_straggler_threshold_seconds = %v, want > 0", got)
	}

	// A second scrape must not re-announce: the SSE stream carries exactly one
	// "straggler" event for the job.
	get(t, ts, "/campaign")
	srv.JobFinished(0, runner.Result{Job: slow, Elapsed: 30 * time.Millisecond})
	events := 0
	for {
		select {
		case e := <-sub.ch:
			if e.Type == "straggler" {
				ev := e.Data.(stragglerEvent)
				if ev.Index != 0 || ev.Job != slow.Name() || ev.ThresholdSeconds <= 0 || ev.RunningSeconds <= ev.ThresholdSeconds {
					t.Errorf("straggler event = %+v", ev)
				}
				events++
			}
			continue
		default:
		}
		break
	}
	if events != 1 {
		t.Errorf("straggler SSE events = %d, want exactly 1", events)
	}
}

// TestStragglerUnderSampled: with fewer completed jobs than the detector
// needs, the threshold stays 0 and nothing is flagged no matter how long a
// job runs.
func TestStragglerUnderSampled(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.CampaignStarted(stragglerMinSamples)
	finishQuickJobs(srv, stragglerMinSamples-1, time.Microsecond)
	srv.JobStarted(0, runner.Job{Experiment: "obs", Config: "c", Workload: "w"},
		telemetry.NewProbe(telemetry.Config{EventBuffer: -1}))
	time.Sleep(5 * time.Millisecond)

	var st campaignStatus
	if err := json.Unmarshal(get(t, ts, "/campaign"), &st); err != nil {
		t.Fatal(err)
	}
	if st.StragglerThresholdSeconds != 0 {
		t.Errorf("threshold = %v with %d samples, want 0", st.StragglerThresholdSeconds, stragglerMinSamples-1)
	}
	if len(st.Stragglers) != 0 {
		t.Errorf("stragglers = %v, want none while under-sampled", st.Stragglers)
	}
}

// TestSSEDroppedCounter fills a subscriber's queue without draining it and
// checks the overflow shows up in /campaign and as
// morrigan_sse_dropped_events_total.
func TestSSEDroppedCounter(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, cancel := srv.hub.subscribe()
	defer cancel()
	over := 10
	for i := 0; i < subscriberBuffer+over; i++ {
		srv.hub.publish(event{Type: "job", Data: jobEvent{Job: "w", Index: i, State: "started"}})
	}

	if got := srv.hub.droppedTotal(); got != uint64(over) {
		t.Fatalf("droppedTotal = %d, want %d", got, over)
	}
	var st campaignStatus
	if err := json.Unmarshal(get(t, ts, "/campaign"), &st); err != nil {
		t.Fatal(err)
	}
	if st.SSEDroppedEvents != uint64(over) {
		t.Errorf("/campaign sse_dropped_events = %d, want %d", st.SSEDroppedEvents, over)
	}
	vals, err := ParseExposition(strings.NewReader(string(get(t, ts, "/metrics"))))
	if err != nil {
		t.Fatal(err)
	}
	if got := vals["morrigan_sse_dropped_events_total"]; got != float64(over) {
		t.Errorf("morrigan_sse_dropped_events_total = %v, want %d", got, over)
	}
}

// TestLabeledGaugeSource registers a gauge source whose samples share one
// family across different label sets (the fleet-gauge shape) and checks the
// exposition stays valid — one HELP/TYPE header per family — with every
// labelled sample present.
func TestLabeledGaugeSource(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.AddGaugeSource(func() []Gauge {
		return []Gauge{
			{Name: "morrigan_fleet_worker_jobs_done", Help: "Jobs finished by the worker.", Labels: map[string]string{"worker": "w1"}, Value: 3},
			{Name: "morrigan_fleet_worker_jobs_done", Help: "Jobs finished by the worker.", Labels: map[string]string{"worker": "w2"}, Value: 5},
			{Name: "morrigan_fabric_jobs_pending", Help: "Unleased jobs.", Value: 7},
		}
	})

	body := string(get(t, ts, "/metrics"))
	if err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition with labelled gauge source invalid: %v\n%s", err, body)
	}
	vals, err := ParseExposition(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if got := vals[`morrigan_fleet_worker_jobs_done{worker="w1"}`]; got != 3 {
		t.Errorf(`jobs_done{worker="w1"} = %v, want 3`, got)
	}
	if got := vals[`morrigan_fleet_worker_jobs_done{worker="w2"}`]; got != 5 {
		t.Errorf(`jobs_done{worker="w2"} = %v, want 5`, got)
	}
	if got := vals["morrigan_fabric_jobs_pending"]; got != 7 {
		t.Errorf("jobs_pending = %v, want 7", got)
	}
	if n := strings.Count(body, "# TYPE morrigan_fleet_worker_jobs_done"); n != 1 {
		t.Errorf("family header emitted %d times, want 1", n)
	}
}
