package obs

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// getStatus fetches a path and returns (status, body) without failing on
// non-200s — readiness legitimately answers 503.
func getStatus(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestHealthzSplit covers the liveness/readiness split: liveness is
// unconditional "ok" (so existing `/healthz | grep ok` probes keep working),
// while readiness tracks campaign attachment and registered checks.
func TestHealthzSplit(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Liveness answers ok from the first moment, on both paths.
	for _, path := range []string{"/healthz", "/healthz/live"} {
		status, body := getStatus(t, ts, path)
		if status != http.StatusOK || body != "ok\n" {
			t.Errorf("GET %s = %d %q, want 200 ok", path, status, body)
		}
	}

	// Readiness is 503 until a campaign attaches.
	status, body := getStatus(t, ts, "/healthz/ready")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "no campaign attached") {
		t.Errorf("ready before attach = %d %q, want 503 no campaign attached", status, body)
	}

	srv.CampaignStarted(3)
	if status, body = getStatus(t, ts, "/healthz/ready"); status != http.StatusOK || body != "ok\n" {
		t.Errorf("ready after attach = %d %q, want 200 ok", status, body)
	}

	// A failing registered check flips readiness to 503 and names itself.
	// The check runs on handler goroutines, so guard the injected error.
	var (
		mu       sync.Mutex
		checkErr error
	)
	setErr := func(err error) { mu.Lock(); checkErr = err; mu.Unlock() }
	srv.AddReadiness("journal", func() error {
		mu.Lock()
		defer mu.Unlock()
		return checkErr
	})
	if status, _ = getStatus(t, ts, "/healthz/ready"); status != http.StatusOK {
		t.Errorf("ready with healthy check = %d, want 200", status)
	}
	setErr(errors.New("read-only filesystem"))
	status, body = getStatus(t, ts, "/healthz/ready")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "journal: read-only filesystem") {
		t.Errorf("ready with failing check = %d %q, want 503 naming the check", status, body)
	}
	// Liveness is unaffected by a failing readiness check.
	if status, _ = getStatus(t, ts, "/healthz/live"); status != http.StatusOK {
		t.Errorf("liveness = %d while readiness fails, want 200", status)
	}

	// Recovery flips readiness back without re-registration.
	setErr(nil)
	if status, _ = getStatus(t, ts, "/healthz/ready"); status != http.StatusOK {
		t.Errorf("ready after recovery = %d, want 200", status)
	}

	// Re-registering a name replaces the check rather than stacking it.
	srv.AddReadiness("journal", func() error { return errors.New("replaced") })
	status, body = getStatus(t, ts, "/healthz/ready")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "journal: replaced") {
		t.Errorf("ready after replacing check = %d %q, want the replacement's error", status, body)
	}
}

// TestGaugeSources: externally sourced gauges (the fabric coordinator's
// mechanism) appear in /metrics with HELP/TYPE lines and the exposition
// stays valid.
func TestGaugeSources(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var value atomic.Int64 // sources run on scrape goroutines
	value.Store(3)
	srv.AddGaugeSource(func() []Gauge {
		return []Gauge{
			{Name: "morrigan_fabric_jobs_pending", Help: "Fabric jobs awaiting a worker lease.", Value: float64(value.Load())},
			{Name: "morrigan_fabric_workers", Help: "Distinct workers.", Value: 2},
		}
	})

	body := string(get(t, ts, "/metrics"))
	if err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition with gauge source invalid: %v\n%s", err, body)
	}
	vals, err := ParseExposition(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if got := vals["morrigan_fabric_jobs_pending"]; got != 3 {
		t.Errorf("morrigan_fabric_jobs_pending = %v, want 3", got)
	}
	if got := vals["morrigan_fabric_workers"]; got != 2 {
		t.Errorf("morrigan_fabric_workers = %v, want 2", got)
	}
	if !strings.Contains(body, "# HELP morrigan_fabric_jobs_pending Fabric jobs awaiting a worker lease.") {
		t.Error("gauge HELP line missing from exposition")
	}

	// Sources are sampled at scrape time, not registration time.
	value.Store(7)
	vals, err = ParseExposition(strings.NewReader(string(get(t, ts, "/metrics"))))
	if err != nil {
		t.Fatal(err)
	}
	if got := vals["morrigan_fabric_jobs_pending"]; got != 7 {
		t.Errorf("re-scraped morrigan_fabric_jobs_pending = %v, want 7", got)
	}
}
