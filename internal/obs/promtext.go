package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strings"
)

// The exposition format's line shapes: sample lines are a metric name, an
// optional label set, and a float value (optionally a timestamp, which this
// server never emits).
var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRE     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? ([^ ]+)( [0-9]+)?$`)
	labelsRE     = regexp.MustCompile(`^\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\}$`)
	valueRE      = regexp.MustCompile(`^[+-]?([0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?|Inf|NaN)$`)
)

// ValidateExposition checks that r is well-formed Prometheus text exposition
// format (version 0.0.4): every line is a HELP/TYPE comment or a sample; each
// metric family declares TYPE at most once and before its first sample; TYPE
// names a known metric type; at least one sample is present. It is the
// format-checking helper the /metrics tests and the CI smoke step share.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	typed := map[string]string{} // metric family -> declared type
	sampled := map[string]bool{} // families that have emitted a sample
	samples := 0
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRE.MatchString(name) {
				return fmt.Errorf("line %d: malformed HELP: %q", lineno, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			fields := strings.Fields(rest)
			if len(fields) != 2 || !metricNameRE.MatchString(fields[0]) {
				return fmt.Errorf("line %d: malformed TYPE: %q", lineno, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", lineno, fields[1])
			}
			if _, dup := typed[fields[0]]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %q", lineno, fields[0])
			}
			if sampled[fields[0]] {
				return fmt.Errorf("line %d: TYPE for %q after its samples", lineno, fields[0])
			}
			typed[fields[0]] = fields[1]
		case strings.HasPrefix(line, "#"):
			// Other comments are permitted by the format.
		default:
			m := sampleRE.FindStringSubmatch(line)
			if m == nil {
				return fmt.Errorf("line %d: malformed sample: %q", lineno, line)
			}
			if m[2] != "" && !labelsRE.MatchString(m[2]) {
				return fmt.Errorf("line %d: malformed labels: %q", lineno, m[2])
			}
			if !valueRE.MatchString(m[3]) {
				return fmt.Errorf("line %d: malformed value: %q", lineno, m[3])
			}
			sampled[familyOf(m[1])] = true
			samples++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	return nil
}

// familyOf maps a sample's metric name to its family name (histogram and
// summary samples carry _bucket/_sum/_count suffixes).
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		name = strings.TrimSuffix(name, suf)
	}
	return name
}

// ParseExposition returns the sample values by metric line (name plus label
// set, verbatim), for tests asserting on specific series.
func ParseExposition(r io.Reader) (map[string]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	out := map[string]float64{}
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("malformed sample: %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(m[3], "%g", &v); err != nil {
			return nil, fmt.Errorf("malformed value in %q: %w", line, err)
		}
		out[m[1]+m[2]] = v
	}
	return out, sc.Err()
}
