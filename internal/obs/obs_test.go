package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"

	"morrigan/internal/core"
	"morrigan/internal/machine"
	"morrigan/internal/runner"
	"morrigan/internal/telemetry"
	"morrigan/internal/workloads"
)

// testJobs enumerates n small simulations over distinct workloads, as pure
// data (machine spec + workload specs).
func testJobs(n int) []runner.Job {
	qmm := workloads.QMM()
	jobs := make([]runner.Job, n)
	for i := 0; i < n; i++ {
		w := qmm[i%len(qmm)]
		m := machine.Default()
		if i%2 == 1 {
			m.Prefetcher = machine.Morrigan(core.DefaultConfig())
		}
		jobs[i] = runner.Job{
			Experiment: "obs",
			Config:     fmt.Sprintf("cfg%d", i%2),
			Workload:   w.Name,
			Machine:    m,
			Workloads:  []workloads.Spec{w},
			Warmup:     5_000,
			Measure:    50_000,
		}
	}
	return jobs
}

// get fetches a path from the test server and returns the body.
func get(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestMetricsExposition scrapes /metrics during and after a live campaign:
// the output must be valid exposition format, carry the campaign and host
// families, and keep its counters monotone across scrapes.
func TestMetricsExposition(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Scrape mid-campaign from a competing goroutine (exercised under -race).
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
				resp, err := ts.Client().Get(ts.URL + "/metrics")
				if err != nil {
					t.Errorf("mid-campaign scrape: %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("mid-campaign scrape read: %v", err)
					return
				}
				if err := ValidateExposition(strings.NewReader(string(body))); err != nil {
					t.Errorf("mid-campaign exposition: %v", err)
					return
				}
			}
		}
	}()

	if _, err := runner.Run(context.Background(), testJobs(4), runner.Options{Workers: 2, Observer: srv}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-scraped

	body := get(t, ts, "/metrics")
	if err := ValidateExposition(strings.NewReader(string(body))); err != nil {
		t.Fatalf("final exposition invalid: %v\n%s", err, body)
	}
	first, err := ParseExposition(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"morrigan_campaign_jobs", "morrigan_campaign_jobs_done_total",
		"morrigan_campaign_jobs_failed_total", "morrigan_campaign_eta_seconds",
		"morrigan_campaign_instructions_total",
		"morrigan_host_heap_alloc_bytes", "morrigan_host_goroutines",
		"morrigan_scrapes_total",
	} {
		if _, ok := first[name]; !ok {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
	if got := first["morrigan_campaign_jobs_done_total"]; got != 4 {
		t.Errorf("jobs_done_total = %v, want 4", got)
	}
	if got := first["morrigan_campaign_jobs_failed_total"]; got != 0 {
		t.Errorf("jobs_failed_total = %v, want 0", got)
	}
	if first["morrigan_campaign_instructions_total"] <= 0 {
		t.Error("instructions_total not positive after a completed campaign")
	}

	// Counter monotonicity across scrapes.
	second, err := ParseExposition(strings.NewReader(string(get(t, ts, "/metrics"))))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"morrigan_campaign_jobs_done_total", "morrigan_campaign_jobs_failed_total",
		"morrigan_campaign_instructions_total", "morrigan_campaign_elapsed_seconds",
		"morrigan_campaign_job_seconds_total", "morrigan_host_gc_total",
		"morrigan_host_gc_pause_seconds_total", "morrigan_scrapes_total",
	} {
		if second[name] < first[name] {
			t.Errorf("counter %s went backwards across scrapes: %v -> %v", name, first[name], second[name])
		}
	}
	if second["morrigan_scrapes_total"] != first["morrigan_scrapes_total"]+1 {
		t.Errorf("scrapes_total: %v then %v, want +1", first["morrigan_scrapes_total"], second["morrigan_scrapes_total"])
	}
}

// TestPerJobGauges drives the observer surface directly with a hand-fed probe
// and asserts the per-job series and their label sets appear while the job is
// active and disappear after it finishes.
func TestPerJobGauges(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	job := runner.Job{Experiment: "obs", Config: "live", Workload: "wl-1"}
	probe := telemetry.NewProbe(telemetry.Config{EventBuffer: -1})
	srv.CampaignStarted(1)
	srv.JobStarted(0, job, probe)
	probe.RecordSample(telemetry.Sample{
		Instructions: 200_000, Cycles: 100_000,
		ISTLBMisses: 400, DSTLBMisses: 100, PBHits: 100,
	})

	vals, err := ParseExposition(strings.NewReader(string(get(t, ts, "/metrics"))))
	if err != nil {
		t.Fatal(err)
	}
	series := `{index="0",job="obs/live/wl-1"}`
	if got := vals["morrigan_job_instructions"+series]; got != 200_000 {
		t.Errorf("job instructions = %v, want 200000", got)
	}
	if got := vals["morrigan_job_ipc"+series]; got != 2 {
		t.Errorf("job ipc = %v, want 2", got)
	}
	if got := vals["morrigan_job_istlb_mpki"+series]; got != 2 {
		t.Errorf("job istlb_mpki = %v, want 2", got)
	}
	if got := vals["morrigan_job_dstlb_mpki"+series]; got != 0.5 {
		t.Errorf("job dstlb_mpki = %v, want 0.5", got)
	}
	if got := vals["morrigan_job_pb_hit_rate"+series]; got != 0.25 {
		t.Errorf("job pb_hit_rate = %v, want 0.25", got)
	}

	srv.JobFinished(0, runner.Result{Job: job, SimInstructions: 250_000})
	vals, err = ParseExposition(strings.NewReader(string(get(t, ts, "/metrics"))))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := vals["morrigan_job_instructions"+series]; ok {
		t.Error("per-job series still exposed after JobFinished")
	}
	if got := vals["morrigan_campaign_instructions_total"]; got != 250_000 {
		t.Errorf("instructions_total = %v, want the finished job's 250000", got)
	}
}

// TestCampaignStatus checks the /campaign JSON document.
func TestCampaignStatus(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, err := runner.Run(context.Background(), testJobs(3), runner.Options{Workers: 3, Observer: srv}); err != nil {
		t.Fatal(err)
	}
	var st struct {
		Schema     int `json:"schema"`
		JobsTotal  int `json:"jobs_total"`
		JobsDone   int `json:"jobs_done"`
		JobsFailed int `json:"jobs_failed"`
		Recent     []struct {
			Name        string  `json:"name"`
			OK          bool    `json:"ok"`
			InstrPerSec float64 `json:"instr_per_sec"`
		} `json:"recent"`
	}
	if err := json.Unmarshal(get(t, ts, "/campaign"), &st); err != nil {
		t.Fatal(err)
	}
	if st.Schema != runner.SchemaVersion {
		t.Errorf("schema = %d, want %d", st.Schema, runner.SchemaVersion)
	}
	if st.JobsTotal != 3 || st.JobsDone != 3 || st.JobsFailed != 0 {
		t.Errorf("totals = %d/%d/%d, want 3/3/0", st.JobsTotal, st.JobsDone, st.JobsFailed)
	}
	if len(st.Recent) != 3 {
		t.Fatalf("recent has %d entries, want 3", len(st.Recent))
	}
	for _, r := range st.Recent {
		if !r.OK || r.InstrPerSec <= 0 {
			t.Errorf("recent job %s: ok=%v instr_per_sec=%v", r.Name, r.OK, r.InstrPerSec)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if got := string(get(t, ts, "/healthz")); got != "ok\n" {
		t.Errorf("healthz = %q, want ok", got)
	}
}

// TestObserverDoesNotPerturbResults is the acceptance check that attaching
// the observability server is purely observational: the same campaign run
// with and without an attached server must produce byte-identical statistics.
func TestObserverDoesNotPerturbResults(t *testing.T) {
	jobs := testJobs(4)
	plain, err := runner.Run(context.Background(), jobs, runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	done := make(chan struct{})
	go func() { // scrape concurrently to maximise interference opportunity
		defer close(done)
		for i := 0; i < 50; i++ {
			resp, err := ts.Client().Get(ts.URL + "/metrics")
			if err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	observed, err := runner.Run(context.Background(), jobs, runner.Options{Workers: 2, Observer: srv})
	if err != nil {
		t.Fatal(err)
	}
	<-done

	for i := range jobs {
		a, err := json.Marshal(plain[i].Stats)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(observed[i].Stats)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("job %d: stats differ with observer attached:\n  plain:    %s\n  observed: %s", i, a, b)
		}
		if !reflect.DeepEqual(plain[i].Stats, observed[i].Stats) {
			t.Errorf("job %d: stats structs differ with observer attached", i)
		}
	}
}

// TestStartAndClose exercises the real listener path (':0' port binding).
func TestStartAndClose(t *testing.T) {
	srv := New()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz over real listener: status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr.String() + "/healthz"); err == nil {
		t.Error("server still reachable after Close")
	}
}

// TestExpositionFile validates an exposition scraped by an external process
// (the CI smoke step): set METRICS_FILE to a file captured with curl.
func TestExpositionFile(t *testing.T) {
	path := os.Getenv("METRICS_FILE")
	if path == "" {
		t.Skip("METRICS_FILE not set (CI smoke helper)")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ValidateExposition(f); err != nil {
		t.Fatalf("exposition in %s invalid: %v", path, err)
	}
}
