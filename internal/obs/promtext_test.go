package obs

import (
	"strings"
	"testing"
)

func TestValidateExpositionAccepts(t *testing.T) {
	good := `# HELP morrigan_campaign_jobs Jobs scheduled.
# TYPE morrigan_campaign_jobs gauge
morrigan_campaign_jobs 45
# HELP morrigan_job_ipc Cumulative IPC.
# TYPE morrigan_job_ipc gauge
morrigan_job_ipc{index="0",job="fig15/Morrigan/qmm-srv-07"} 1.25
morrigan_job_ipc{index="1",job="fig15/Morrigan/qmm-srv-08"} 0.98
# TYPE morrigan_scrapes_total counter
morrigan_scrapes_total 3
weird_but_legal_value 1.5e-07
negative_value -4
`
	if err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"no samples":        "# HELP a b\n# TYPE a gauge\n",
		"bad type":          "# TYPE a foo\na 1\n",
		"duplicate type":    "# TYPE a gauge\n# TYPE a gauge\na 1\n",
		"type after sample": "a 1\n# TYPE a gauge\n",
		"bad metric name":   "0bad 1\n",
		"bad value":         "a one\n",
		"unclosed labels":   "a{x=\"y\" 1\n",
		"bad label name":    "a{0x=\"y\"} 1\n",
	}
	for name, in := range cases {
		if err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: invalid exposition accepted:\n%s", name, in)
		}
	}
}

func TestParseExposition(t *testing.T) {
	in := "# TYPE a gauge\na 1\nb{x=\"y\"} 2.5\n"
	vals, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if vals["a"] != 1 || vals[`b{x="y"}`] != 2.5 {
		t.Errorf("parsed %v", vals)
	}
}
