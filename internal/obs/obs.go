// Package obs is the live observability surface of a simulation campaign: an
// opt-in HTTP server that attaches to the campaign runner (internal/runner)
// through its Observer hooks and exposes, while simulations are still
// running:
//
//   - GET /metrics — Prometheus text exposition: campaign progress (jobs
//     done/failed, ETA), per-job live simulator gauges (instructions, cycles,
//     IPC, iSTLB/dSTLB MPKI, PB hit rate, simulated instructions per second)
//     scraped from each job's telemetry probe snapshot, and host
//     self-profiling gauges (heap, GC, goroutines);
//   - GET /campaign — the same state as one JSON document;
//   - GET /events — a Server-Sent-Events stream of telemetry interval
//     samples and job lifecycle transitions, in arrival order;
//   - GET /healthz, /healthz/live — liveness; GET /healthz/ready —
//     readiness (503 until a campaign attaches, or while any registered
//     readiness check — e.g. journal writability — fails);
//   - /debug/pprof/* — the standard Go profiler endpoints.
//
// The server is purely observational: it reads only the probes'
// cross-goroutine snapshot surface (telemetry.Snapshot), so an attached
// server leaves campaign results bit-identical to an unobserved run. When no
// server is constructed (the -serve flag unset), none of this code runs at
// all.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"morrigan/internal/runner"
	"morrigan/internal/telemetry"
)

// maxRecent bounds the finished-job history kept for /campaign; older entries
// roll into the aggregate counters only.
const maxRecent = 64

// maxDurations bounds the completed-job duration history the straggler
// detector computes its running p95 over.
const maxDurations = 512

// stragglerMinSamples is how many completed durations the detector needs
// before it judges anyone — a p95 over a handful of jobs is noise.
const stragglerMinSamples = 4

// DefaultStragglerK is the straggler threshold multiplier: a live job is
// flagged once its execution time exceeds k× the running p95 of completed job
// durations.
const DefaultStragglerK = 3.0

// jobState tracks one campaign job from JobStarted to JobFinished.
type jobState struct {
	index   int
	name    string
	started time.Time
	probe   *telemetry.Probe
}

// finishedJob is the bounded post-completion record kept for /campaign.
type finishedJob struct {
	Name         string  `json:"name"`
	OK           bool    `json:"ok"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	Instructions uint64  `json:"instructions"`
	InstrPerSec  float64 `json:"instr_per_sec"`
	IPC          float64 `json:"ipc"`
	Error        string  `json:"error,omitempty"`
}

// Server is the observability server. Construct with New, attach to a
// campaign via runner.Options.Observer, and serve with Start (or mount
// Handler on any http server). All methods are safe for concurrent use.
type Server struct {
	mu      sync.Mutex
	started time.Time

	totalJobs   int // scheduled across all campaigns so far
	doneJobs    int
	failedJobs  int
	doneInstr   uint64  // executed instructions of finished jobs
	doneElapsed float64 // summed wall seconds of finished jobs

	active map[int]*jobState // live jobs of the current campaign, by index
	recent []finishedJob     // trailing window of finished jobs

	scrapes uint64 // /metrics requests served (a counter metric)

	gaugeSources []func() []Gauge        // extra /metrics gauges (see AddGaugeSource)
	readiness    map[string]func() error // named readiness checks (see AddReadiness)

	durations []float64    // completed-job wall seconds (bounded window) for the p95
	flagged   map[int]bool // active job indices already announced as stragglers

	hub *hub
	mux *http.ServeMux

	lis  net.Listener
	srv  *http.Server
	done chan struct{}
}

// New builds a detached server; nothing listens until Start (tests mount
// Handler() on an httptest server instead).
func New() *Server {
	s := &Server{
		started:   time.Now(),
		active:    make(map[int]*jobState),
		readiness: make(map[string]func() error),
		flagged:   make(map[int]bool),
		hub:       newHub(),
		mux:       http.NewServeMux(),
	}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/campaign", s.handleCampaign)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/healthz/live", s.handleHealthz)
	s.mux.HandleFunc("/healthz/ready", s.handleReady)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's HTTP handler (for tests and custom mounting).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (e.g. ":8080", "127.0.0.1:0") and serves in the
// background until Close. It returns the bound address, so ":0" is usable.
func (s *Server) Start(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.lis = lis
	s.srv = &http.Server{Handler: s.mux}
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		// ErrServerClosed is the normal Close path; anything else is lost —
		// the campaign outcome must not depend on the observability server.
		_ = s.srv.Serve(lis)
	}()
	return lis.Addr(), nil
}

// Close shuts the listener down and disconnects event subscribers.
func (s *Server) Close() error {
	s.hub.close()
	if s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// Server implements runner.Observer.
var _ runner.Observer = (*Server)(nil)

// CampaignStarted accumulates scheduled jobs. Experiment harnesses run many
// campaigns back to back through one server; totals aggregate across them,
// and per-campaign job indices only ever collide after the previous
// campaign's jobs have all finished, so the active map is safe to reuse.
func (s *Server) CampaignStarted(total int) {
	s.mu.Lock()
	s.totalJobs += total
	s.mu.Unlock()
}

// JobStarted registers a live job and hooks its probe's sample stream into
// the SSE hub. Called on the job's worker goroutine before the simulation
// starts, the only point where the probe's single-goroutine surface may be
// touched from here.
func (s *Server) JobStarted(index int, job runner.Job, probe *telemetry.Probe) {
	name := job.Name()
	probe.SetSampleListener(func(is telemetry.IntervalSample) {
		s.hub.publish(event{
			Type: "sample",
			Data: sampleEvent{Job: name, Index: index, Sample: is},
		})
	})
	s.mu.Lock()
	s.active[index] = &jobState{index: index, name: name, started: time.Now(), probe: probe}
	s.mu.Unlock()
	s.hub.publish(event{Type: "job", Data: jobEvent{Job: name, Index: index, State: "started"}})
}

// JobFinished retires a live job into the aggregate counters and the bounded
// recent-history window.
func (s *Server) JobFinished(index int, res runner.Result) {
	f := finishedJob{
		Name:         res.Job.Name(),
		OK:           res.Err == nil,
		ElapsedMS:    float64(res.Elapsed.Microseconds()) / 1000,
		Instructions: res.SimInstructions,
		InstrPerSec:  res.InstrPerSec,
		IPC:          res.Stats.IPC,
	}
	if res.Err != nil {
		f.Error = res.Err.Error()
	}
	s.mu.Lock()
	delete(s.active, index)
	delete(s.flagged, index)
	s.doneJobs++
	if res.Err != nil {
		s.failedJobs++
	}
	s.doneInstr += res.SimInstructions
	s.doneElapsed += res.Elapsed.Seconds()
	if res.Err == nil && res.Elapsed > 0 {
		s.durations = append(s.durations, res.Elapsed.Seconds())
		if len(s.durations) > maxDurations {
			s.durations = s.durations[len(s.durations)-maxDurations:]
		}
	}
	s.recent = append(s.recent, f)
	if len(s.recent) > maxRecent {
		s.recent = s.recent[len(s.recent)-maxRecent:]
	}
	s.mu.Unlock()
	state := "finished"
	if res.Err != nil {
		state = "failed"
	}
	s.hub.publish(event{Type: "job", Data: jobEvent{Job: f.Name, Index: index, State: state}})
}

// eta estimates remaining campaign seconds from the observed completion rate;
// zero until one job has finished or when nothing remains. Callers hold s.mu.
func (s *Server) eta(now time.Time) float64 {
	rem := s.totalJobs - s.doneJobs
	if s.doneJobs == 0 || rem <= 0 {
		return 0
	}
	elapsed := now.Sub(s.started).Seconds()
	return elapsed / float64(s.doneJobs) * float64(rem)
}

// liveJob is one active job's scrape view.
type liveJob struct {
	Index        int     `json:"index"`
	Name         string  `json:"name"`
	RunningSecs  float64 `json:"running_seconds"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
	ISTLBMPKI    float64 `json:"istlb_mpki"`
	DSTLBMPKI    float64 `json:"dstlb_mpki"`
	PBHitRate    float64 `json:"pb_hit_rate"`
	InstrPerSec  float64 `json:"instr_per_sec"`
	Samples      int     `json:"samples"`
	Straggler    bool    `json:"straggler,omitempty"`
}

// stragglerThresholdLocked computes the current straggler cutoff: k× the p95
// of completed-job durations, or 0 while too few jobs have finished to judge.
// Callers hold s.mu.
func (s *Server) stragglerThresholdLocked() float64 {
	if len(s.durations) < stragglerMinSamples {
		return 0
	}
	ds := append([]float64(nil), s.durations...)
	sort.Float64s(ds)
	// Nearest-rank p95 (matches the runner's summary percentiles).
	idx := int(float64(len(ds))*0.95+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	return DefaultStragglerK * ds[idx]
}

// liveJobs snapshots the active jobs (probe snapshots are read without
// holding s.mu beyond the map walk; Snapshot is lock-free) and applies the
// straggler detector: a job whose running time exceeds the returned threshold
// is marked, and announced once on the SSE stream the first time it crosses.
func (s *Server) liveJobs(now time.Time) ([]liveJob, float64) {
	s.mu.Lock()
	states := make([]*jobState, 0, len(s.active))
	for _, st := range s.active {
		states = append(states, st)
	}
	threshold := s.stragglerThresholdLocked()
	s.mu.Unlock()

	var announce []stragglerEvent
	jobs := make([]liveJob, 0, len(states))
	for _, st := range states {
		lj := liveJob{Index: st.index, Name: st.name, RunningSecs: now.Sub(st.started).Seconds()}
		if snap, ok := st.probe.Snapshot(); ok {
			lj.Instructions = snap.Cum.Instructions
			lj.Cycles = uint64(snap.Cum.Cycles)
			lj.IPC = snap.IPC()
			lj.ISTLBMPKI = snap.ISTLBMPKI()
			lj.DSTLBMPKI = snap.DSTLBMPKI()
			lj.PBHitRate = snap.PBHitRate()
			lj.Samples = snap.Seq
			if lj.RunningSecs > 0 {
				lj.InstrPerSec = float64(snap.Cum.Instructions) / lj.RunningSecs
			}
		}
		if threshold > 0 && lj.RunningSecs > threshold {
			lj.Straggler = true
		}
		jobs = append(jobs, lj)
	}

	s.mu.Lock()
	for _, lj := range jobs {
		if lj.Straggler && !s.flagged[lj.Index] {
			// Only announce jobs still active: a job that finished between
			// the two lock windows already cleared its flag.
			if _, ok := s.active[lj.Index]; ok {
				s.flagged[lj.Index] = true
				announce = append(announce, stragglerEvent{
					Job:              lj.Name,
					Index:            lj.Index,
					RunningSeconds:   lj.RunningSecs,
					ThresholdSeconds: threshold,
				})
			}
		}
	}
	s.mu.Unlock()

	for _, ev := range announce {
		s.hub.publish(event{Type: "straggler", Data: ev})
	}
	return jobs, threshold
}

// campaignStatus is the /campaign JSON document.
type campaignStatus struct {
	Schema         int     `json:"schema"`
	JobsTotal      int     `json:"jobs_total"`
	JobsDone       int     `json:"jobs_done"`
	JobsFailed     int     `json:"jobs_failed"`
	JobsActive     int     `json:"jobs_active"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	ETASeconds     float64 `json:"eta_seconds"`
	Instructions   uint64  `json:"instructions"`
	// StragglerThresholdSeconds is the current straggler cutoff (k× the
	// running p95 of completed-job durations; 0 while under-sampled), and
	// Stragglers names the active jobs beyond it.
	StragglerThresholdSeconds float64  `json:"straggler_threshold_seconds"`
	Stragglers                []string `json:"stragglers"`
	// SSEDroppedEvents counts events dropped on full /events subscriber
	// queues since the server started.
	SSEDroppedEvents uint64        `json:"sse_dropped_events"`
	Active           []liveJob     `json:"active"`
	Recent           []finishedJob `json:"recent"`
}

// handleCampaign serves the live JSON status.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	live, threshold := s.liveJobs(now)

	s.mu.Lock()
	st := campaignStatus{
		Schema:                    runner.SchemaVersion,
		JobsTotal:                 s.totalJobs,
		JobsDone:                  s.doneJobs,
		JobsFailed:                s.failedJobs,
		JobsActive:                len(s.active),
		ElapsedSeconds:            now.Sub(s.started).Seconds(),
		ETASeconds:                s.eta(now),
		Instructions:              s.doneInstr,
		StragglerThresholdSeconds: threshold,
		Stragglers:                []string{},
		SSEDroppedEvents:          s.hub.droppedTotal(),
		Recent:                    append([]finishedJob(nil), s.recent...),
	}
	s.mu.Unlock()

	st.Active = live
	for _, lj := range live {
		st.Instructions += lj.Instructions
		if lj.Straggler {
			st.Stragglers = append(st.Stragglers, lj.Name)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// Gauge is one externally sourced /metrics gauge sample. Subsystems that are
// not runner observers (e.g. the fabric coordinator) publish their state
// through AddGaugeSource instead of implementing scrape plumbing of their
// own.
type Gauge struct {
	// Name is the full metric name (e.g. "morrigan_fabric_jobs_pending").
	Name string
	// Help is the metric's # HELP line text.
	Help string
	// Labels are optional label name→value pairs (e.g. {"worker": "w1"}).
	// Gauges sharing a Name but differing in Labels form one metric family
	// and are emitted under a single HELP/TYPE header.
	Labels map[string]string
	// Value is the sample value at scrape time.
	Value float64
}

// AddGaugeSource registers a function called on every /metrics scrape; the
// gauges it returns are appended to the exposition. Sources must be safe for
// concurrent use and should be cheap — they run inline in the scrape.
func (s *Server) AddGaugeSource(src func() []Gauge) {
	s.mu.Lock()
	s.gaugeSources = append(s.gaugeSources, src)
	s.mu.Unlock()
}

// AddReadiness registers a named readiness check: /healthz/ready reports 503
// with the check's error while it fails. Checks must be safe for concurrent
// use. Registering the same name again replaces the check.
func (s *Server) AddReadiness(name string, check func() error) {
	s.mu.Lock()
	s.readiness[name] = check
	s.mu.Unlock()
}

// handleHealthz is the liveness endpoint (also mounted at /healthz/live): it
// answers "ok" whenever the process can serve HTTP at all, with no judgement
// about campaign state — that is readiness's job.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReady is the readiness endpoint: 503 until a campaign has attached
// (CampaignStarted ran), and 503 with the failing check's name and error
// while any registered readiness check fails — e.g. a checkpoint journal
// whose filesystem stopped accepting writes.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	attached := s.totalJobs > 0
	names := make([]string, 0, len(s.readiness))
	checks := make([]func() error, 0, len(s.readiness))
	for name, check := range s.readiness {
		names = append(names, name)
		checks = append(checks, check)
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !attached {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no campaign attached")
		return
	}
	for i, check := range checks {
		if err := check(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "%s: %v\n", names[i], err)
			return
		}
	}
	fmt.Fprintln(w, "ok")
}
