package obs

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"time"
)

// promWriter emits Prometheus text exposition format (version 0.0.4): for
// each metric one # HELP line, one # TYPE line, then its samples. Everything
// the server exposes is a gauge or a counter, so no dependency on a client
// library is needed — the format is five line shapes.
type promWriter struct {
	w   io.Writer
	err error
}

// metric opens a metric family: HELP and TYPE comment lines.
func (p *promWriter) metric(name, help, typ string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line; labels may be nil.
func (p *promWriter) sample(name string, labels map[string]string, value float64) {
	if p.err != nil {
		return
	}
	lbl := ""
	if len(labels) > 0 {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			// Go's %q escaping of \, " and newline coincides with the
			// exposition format's label-value escaping.
			parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
		}
		lbl = "{" + strings.Join(parts, ",") + "}"
	}
	_, p.err = fmt.Fprintf(p.w, "%s%s %s\n", name, lbl, formatValue(value))
}

// formatValue renders a sample value: integral values without an exponent,
// everything else in Go's shortest-roundtrip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	live, threshold := s.liveJobs(now)

	s.mu.Lock()
	s.scrapes++
	scrapes := s.scrapes
	total, done, failed := s.totalJobs, s.doneJobs, s.failedJobs
	doneInstr, doneElapsed := s.doneInstr, s.doneElapsed
	eta := s.eta(now)
	elapsed := now.Sub(s.started).Seconds()
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := &promWriter{w: w}

	// Campaign progress.
	p.metric("morrigan_campaign_jobs", "Jobs scheduled across all campaigns so far.", "gauge")
	p.sample("morrigan_campaign_jobs", nil, float64(total))
	p.metric("morrigan_campaign_jobs_done_total", "Jobs completed (including failures).", "counter")
	p.sample("morrigan_campaign_jobs_done_total", nil, float64(done))
	p.metric("morrigan_campaign_jobs_failed_total", "Jobs that failed, panicked, timed out or were cancelled.", "counter")
	p.sample("morrigan_campaign_jobs_failed_total", nil, float64(failed))
	p.metric("morrigan_campaign_eta_seconds", "Estimated seconds until the campaign completes (0 until one job finishes).", "gauge")
	p.sample("morrigan_campaign_eta_seconds", nil, eta)
	p.metric("morrigan_campaign_elapsed_seconds", "Seconds since the server attached.", "counter")
	p.sample("morrigan_campaign_elapsed_seconds", nil, elapsed)

	// Simulated-instruction throughput: finished jobs plus live progress, so
	// the series is monotone non-decreasing across scrapes.
	liveInstr := uint64(0)
	for _, lj := range live {
		liveInstr += lj.Instructions
	}
	p.metric("morrigan_campaign_instructions_total", "Simulated instructions executed (finished jobs plus live measured progress).", "counter")
	p.sample("morrigan_campaign_instructions_total", nil, float64(doneInstr+liveInstr))
	p.metric("morrigan_campaign_job_seconds_total", "Summed wall-clock seconds of finished jobs.", "counter")
	p.sample("morrigan_campaign_job_seconds_total", nil, doneElapsed)

	// Per-job live gauges, scraped from each probe's atomic snapshot.
	perJob := []struct {
		name, help string
		value      func(liveJob) float64
	}{
		{"morrigan_job_instructions", "Instructions retired in the job's measurement interval so far.", func(j liveJob) float64 { return float64(j.Instructions) }},
		{"morrigan_job_cycles", "Simulated cycles in the job's measurement interval so far.", func(j liveJob) float64 { return float64(j.Cycles) }},
		{"morrigan_job_ipc", "Cumulative simulated IPC of the measurement interval.", func(j liveJob) float64 { return j.IPC }},
		{"morrigan_job_istlb_mpki", "Cumulative iSTLB misses per kilo-instruction.", func(j liveJob) float64 { return j.ISTLBMPKI }},
		{"morrigan_job_dstlb_mpki", "Cumulative dSTLB misses per kilo-instruction.", func(j liveJob) float64 { return j.DSTLBMPKI }},
		{"morrigan_job_pb_hit_rate", "Fraction of iSTLB misses served by the prefetch buffer.", func(j liveJob) float64 { return j.PBHitRate }},
		{"morrigan_job_instr_per_second", "Simulation throughput: measured instructions per wall-clock second.", func(j liveJob) float64 { return j.InstrPerSec }},
	}
	for _, m := range perJob {
		p.metric(m.name, m.help, "gauge")
		for _, lj := range live {
			p.sample(m.name, map[string]string{"job": lj.Name, "index": fmt.Sprintf("%d", lj.Index)}, m.value(lj))
		}
	}

	// Host self-profiling.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.metric("morrigan_host_heap_alloc_bytes", "Live heap (runtime.MemStats.HeapAlloc).", "gauge")
	p.sample("morrigan_host_heap_alloc_bytes", nil, float64(ms.HeapAlloc))
	p.metric("morrigan_host_heap_sys_bytes", "Heap obtained from the OS (runtime.MemStats.HeapSys).", "gauge")
	p.sample("morrigan_host_heap_sys_bytes", nil, float64(ms.HeapSys))
	p.metric("morrigan_host_gc_total", "Completed GC cycles.", "counter")
	p.sample("morrigan_host_gc_total", nil, float64(ms.NumGC))
	p.metric("morrigan_host_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", "counter")
	p.sample("morrigan_host_gc_pause_seconds_total", nil, float64(ms.PauseTotalNs)/1e9)
	p.metric("morrigan_host_goroutines", "Live goroutines.", "gauge")
	p.sample("morrigan_host_goroutines", nil, float64(runtime.NumGoroutine()))
	p.metric("morrigan_scrapes_total", "Scrapes served by this /metrics endpoint.", "counter")
	p.sample("morrigan_scrapes_total", nil, float64(scrapes))

	// Straggler detector and SSE back-pressure.
	stragglers := 0
	for _, lj := range live {
		if lj.Straggler {
			stragglers++
		}
	}
	p.metric("morrigan_campaign_straggler_threshold_seconds", "Straggler cutoff: k x the running p95 of completed-job durations (0 while under-sampled).", "gauge")
	p.sample("morrigan_campaign_straggler_threshold_seconds", nil, threshold)
	p.metric("morrigan_campaign_stragglers", "Active jobs whose running time exceeds the straggler threshold.", "gauge")
	p.sample("morrigan_campaign_stragglers", nil, float64(stragglers))
	p.metric("morrigan_sse_dropped_events_total", "Events dropped on full /events subscriber queues.", "counter")
	p.sample("morrigan_sse_dropped_events_total", nil, float64(s.hub.droppedTotal()))

	// Externally registered gauges (e.g. fabric coordinator and fleet state).
	// Gauges sharing a name form one family: emit HELP/TYPE once, then every
	// labelled sample, preserving first-seen family order.
	s.mu.Lock()
	sources := append([]func() []Gauge(nil), s.gaugeSources...)
	s.mu.Unlock()
	var order []string
	families := make(map[string][]Gauge)
	for _, src := range sources {
		for _, g := range src() {
			if _, ok := families[g.Name]; !ok {
				order = append(order, g.Name)
			}
			families[g.Name] = append(families[g.Name], g)
		}
	}
	for _, name := range order {
		fam := families[name]
		p.metric(name, fam[0].Help, "gauge")
		for _, g := range fam {
			p.sample(name, g.Labels, g.Value)
		}
	}
}
