package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"morrigan/internal/runner"
	"morrigan/internal/telemetry"
)

// sseClient subscribes to /events and collects decoded messages until the
// body closes or wantSamples "sample" events have arrived.
type sseMsg struct {
	ID    string
	Event string
	Data  string
}

// readSSE parses one subscriber's stream, delivering messages on the channel
// until the connection drops.
func readSSE(t *testing.T, ts *httptest.Server, ctx context.Context, out chan<- sseMsg, ready chan<- struct{}) {
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events", nil)
	if err != nil {
		t.Errorf("events request: %v", err)
		close(ready)
		return
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Errorf("events connect: %v", err)
		close(ready)
		return
	}
	defer resp.Body.Close()
	if resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Errorf("events content-type = %q", resp.Header.Get("Content-Type"))
	}
	close(ready)
	sc := bufio.NewScanner(resp.Body)
	var cur sseMsg
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Event != "" {
				out <- cur
			}
			cur = sseMsg{}
		case strings.HasPrefix(line, "id: "):
			cur.ID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		}
	}
	close(out)
}

// TestSSESampleOrder feeds a probe from a producer goroutine while a real
// HTTP client consumes /events, asserting every interval sample arrives, in
// recording order, under -race.
func TestSSESampleOrder(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	msgs := make(chan sseMsg, 1024)
	ready := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		readSSE(t, ts, ctx, msgs, ready)
	}()
	<-ready

	const n = 100
	job := runner.Job{Experiment: "obs", Config: "sse", Workload: "wl-0"}
	probe := telemetry.NewProbe(telemetry.Config{EventBuffer: -1})
	srv.CampaignStarted(1)
	srv.JobStarted(0, job, probe)
	go func() {
		// The probe is single-goroutine; this goroutine is its sole owner
		// after JobStarted, exactly like a simulation worker.
		for i := 1; i <= n; i++ {
			probe.RecordSample(telemetry.Sample{Instructions: uint64(i) * 1000})
		}
		srv.JobFinished(0, runner.Result{Job: job})
	}()

	var samples []telemetry.IntervalSample
	for m := range msgs {
		switch m.Event {
		case "sample":
			var se struct {
				Job    string                   `json:"job"`
				Index  int                      `json:"index"`
				Sample telemetry.IntervalSample `json:"sample"`
			}
			if err := json.Unmarshal([]byte(m.Data), &se); err != nil {
				t.Fatalf("sample payload: %v", err)
			}
			if se.Job != "obs/sse/wl-0" || se.Index != 0 {
				t.Fatalf("sample attribution: job=%q index=%d", se.Job, se.Index)
			}
			samples = append(samples, se.Sample)
		case "job":
			var je struct {
				State string `json:"state"`
			}
			if err := json.Unmarshal([]byte(m.Data), &je); err != nil {
				t.Fatalf("job payload: %v", err)
			}
			if je.State == "finished" {
				cancel() // stream ends; drain remaining buffered messages
			}
		}
	}
	wg.Wait()

	if len(samples) != n {
		t.Fatalf("received %d samples, want %d (buffer %d should not drop at this rate)", len(samples), n, subscriberBuffer)
	}
	for i, s := range samples {
		if s.Seq != i {
			t.Fatalf("sample %d out of order: seq %d", i, s.Seq)
		}
		if s.Instructions != uint64(i+1)*1000 {
			t.Fatalf("sample %d: instructions %d, want %d", i, s.Instructions, (i+1)*1000)
		}
	}
}

// TestSSESlowClientDoesNotBlock verifies publishing to a subscriber that
// never drains only drops events rather than stalling the publisher.
func TestSSESlowClientDoesNotBlock(t *testing.T) {
	h := newHub()
	sub, cancel := h.subscribe()
	defer cancel()
	for i := 0; i < subscriberBuffer*3; i++ {
		h.publish(event{Type: "sample", Data: i}) // must never block
	}
	if sub.dropped == 0 {
		t.Error("expected drops for an undrained subscriber")
	}
	// Delivered prefix is still in order.
	prev := -1
	for i := 0; i < subscriberBuffer; i++ {
		e := <-sub.ch
		v := e.Data.(int)
		if v <= prev {
			t.Fatalf("delivered out of order: %d after %d", v, prev)
		}
		prev = v
	}
}

func TestHubCloseDisconnectsSubscribers(t *testing.T) {
	h := newHub()
	sub, cancel := h.subscribe()
	defer cancel()
	h.close()
	if _, ok := <-sub.ch; ok {
		t.Error("subscriber channel still open after hub close")
	}
	h.publish(event{Type: "sample"}) // must not panic on closed hub
	if s2, _ := h.subscribe(); s2 != nil {
		if _, ok := <-s2.ch; ok {
			t.Error("post-close subscriber got a live channel")
		}
	}
}
