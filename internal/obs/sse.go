package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"morrigan/internal/telemetry"
)

// subscriberBuffer is each /events client's queue depth. Publishing never
// blocks the simulation: when a client's queue is full, newer events for that
// client are dropped (and counted), so delivered events stay in order.
const subscriberBuffer = 256

// event is one SSE message: Type becomes the "event:" field, Data is
// JSON-encoded into "data:".
type event struct {
	Type string
	Data any
}

// sampleEvent is the payload of "sample" events: one telemetry interval
// sample, tagged with the producing job.
type sampleEvent struct {
	Job    string                   `json:"job"`
	Index  int                      `json:"index"`
	Sample telemetry.IntervalSample `json:"sample"`
}

// jobEvent is the payload of "job" events: a lifecycle transition.
type jobEvent struct {
	Job   string `json:"job"`
	Index int    `json:"index"`
	State string `json:"state"` // started | finished | failed
}

// stragglerEvent is the payload of "straggler" events: a live job whose
// execution time crossed the straggler threshold (k× the running p95 of
// completed jobs). Emitted once per job, when it first crosses.
type stragglerEvent struct {
	Job              string  `json:"job"`
	Index            int     `json:"index"`
	RunningSeconds   float64 `json:"running_seconds"`
	ThresholdSeconds float64 `json:"threshold_seconds"`
}

// subscriber is one connected /events client.
type subscriber struct {
	ch      chan event
	dropped uint64
}

// hub fans events out to subscribers. publish is called from simulation
// worker goroutines (via probe sample listeners) and must stay cheap: one
// mutex acquisition and non-blocking channel sends.
type hub struct {
	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	closed  bool
	seq     uint64
	dropped uint64 // events dropped across all subscribers, ever
}

func newHub() *hub {
	return &hub{subs: make(map[*subscriber]struct{})}
}

// publish delivers e to every subscriber without blocking; slow clients lose
// newest events rather than stalling the simulation or reordering delivery.
func (h *hub) publish(e event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	for s := range h.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped++
			h.dropped++
		}
	}
}

// droppedTotal reports how many events have ever been dropped on full
// subscriber queues — the back-pressure signal surfaced as the
// morrigan_sse_dropped_events_total counter and in /campaign.
func (h *hub) droppedTotal() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// subscribe registers a new client; the returned cancel must be called.
func (h *hub) subscribe() (*subscriber, func()) {
	s := &subscriber{ch: make(chan event, subscriberBuffer)}
	h.mu.Lock()
	if h.closed {
		close(s.ch)
	} else {
		h.subs[s] = struct{}{}
	}
	h.mu.Unlock()
	return s, func() {
		h.mu.Lock()
		if _, ok := h.subs[s]; ok {
			delete(h.subs, s)
			close(s.ch)
		}
		h.mu.Unlock()
	}
}

// close disconnects every subscriber and refuses new ones.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		close(s.ch)
	}
}

// handleEvents serves GET /events as a Server-Sent-Events stream. Each
// message carries an incrementing "id:", an "event:" type ("sample" or
// "job") and a JSON "data:" payload; the stream runs until the client
// disconnects or the server closes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sub, cancel := s.hub.subscribe()
	defer cancel()

	id := 0
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-sub.ch:
			if !ok {
				return // server closing
			}
			data, err := json.Marshal(e.Data)
			if err != nil {
				continue
			}
			id++
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, e.Type, data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
