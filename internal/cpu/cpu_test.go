package cpu

import "testing"

func TestBaseCyclesAndIPC(t *testing.T) {
	c := New(DefaultConfig())
	c.Retire(400)
	if c.BaseCycles() != 100 {
		t.Fatalf("BaseCycles = %d, want 100", c.BaseCycles())
	}
	if c.Cycles() != 100 {
		t.Fatalf("Cycles = %d", c.Cycles())
	}
	if got := c.IPC(); got != 4 {
		t.Fatalf("IPC = %v, want 4", got)
	}
	// Rounding up for a partial dispatch group.
	c2 := New(DefaultConfig())
	c2.Retire(401)
	if c2.BaseCycles() != 101 {
		t.Fatalf("BaseCycles = %d, want 101", c2.BaseCycles())
	}
}

func TestFrontEndStallsChargedFully(t *testing.T) {
	c := New(DefaultConfig())
	c.Retire(400)
	c.FrontEndStall(StallICache, 20)
	c.FrontEndStall(StallITLB, 8)
	c.FrontEndStall(StallIWalk, 69)
	if c.Cycles() != 100+20+8+69 {
		t.Fatalf("Cycles = %d", c.Cycles())
	}
	if c.StallCycles(StallIWalk) != 69 {
		t.Fatalf("StallIWalk = %d", c.StallCycles(StallIWalk))
	}
}

func TestDataStallHideWindow(t *testing.T) {
	c := New(DefaultConfig())
	c.Retire(100)
	// Short data latency is fully hidden.
	if charged := c.DataStall(20); charged != 0 {
		t.Fatalf("short miss charged %d", charged)
	}
	// Long latency charged minus the hide window.
	if charged := c.DataStall(130); charged != 100 {
		t.Fatalf("long miss charged %d, want 100", charged)
	}
	if c.StallCycles(StallData) != 100 {
		t.Fatalf("StallData = %d", c.StallCycles(StallData))
	}
}

func TestDataStallMLPOverlap(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	c.Retire(10)
	first := c.DataStall(200)
	if first == 0 {
		t.Fatal("first miss should be charged")
	}
	// A second miss within the ROB span overlaps for free.
	c.Retire(50)
	if charged := c.DataStall(200); charged != 0 {
		t.Fatalf("overlapping miss charged %d", charged)
	}
	// Beyond the ROB span the next miss is charged again.
	c.Retire(uint64(cfg.ROB))
	if charged := c.DataStall(200); charged == 0 {
		t.Fatal("post-window miss not charged")
	}
}

func TestFrontEndVsDataAsymmetry(t *testing.T) {
	// The paper's premise: the same page-walk latency hurts more on the
	// instruction side than on the data side.
	frontend := New(DefaultConfig())
	frontend.Retire(1000)
	frontend.FrontEndStall(StallIWalk, 112)

	backend := New(DefaultConfig())
	backend.Retire(1000)
	backend.DataStall(112)

	if frontend.Cycles() <= backend.Cycles() {
		t.Fatalf("frontend %d vs backend %d: asymmetry lost",
			frontend.Cycles(), backend.Cycles())
	}
}

func TestTranslationCyclePct(t *testing.T) {
	c := New(DefaultConfig())
	c.Retire(400) // 100 base cycles
	c.FrontEndStall(StallITLB, 50)
	c.FrontEndStall(StallIWalk, 50)
	// 100 translation cycles out of 200 total.
	if got := c.TranslationCyclePct(); got != 50 {
		t.Fatalf("TranslationCyclePct = %v, want 50", got)
	}
	empty := New(DefaultConfig())
	if empty.TranslationCyclePct() != 0 || empty.IPC() != 0 {
		t.Fatal("empty core should report zeros")
	}
}

func TestResetStats(t *testing.T) {
	c := New(DefaultConfig())
	c.Retire(100)
	c.FrontEndStall(StallICache, 10)
	c.DataStall(200)
	c.ResetStats()
	if c.Cycles() != 0 || c.Retired() != 0 {
		t.Fatal("stats not reset")
	}
	// MLP window must also clear.
	c.Retire(1)
	if charged := c.DataStall(200); charged == 0 {
		t.Fatal("MLP window survived reset")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{{Width: 0, ROB: 1}, {Width: 1, ROB: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", bad)
				}
			}()
			New(bad)
		}()
	}
}

func TestStallKindString(t *testing.T) {
	want := map[StallKind]string{
		StallICache: "icache", StallITLB: "itlb-lookup",
		StallIWalk: "iwalk", StallData: "data", StallKind(9): "invalid",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("StallKind(%d) = %q, want %q", k, k.String(), s)
		}
	}
}
