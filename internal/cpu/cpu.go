// Package cpu provides the timing model of the simulated core: a 4-wide
// interval-analysis model (in the style of Karkhanis & Smith / Eyerman et
// al.) rather than a cycle-accurate out-of-order pipeline.
//
// The model captures exactly the asymmetry the paper's results rest on
// (Sections 1 and 3.2): front-end events — instruction cache misses,
// instruction TLB lookups and demand instruction page walks — starve the
// pipeline and are charged their full latency, while back-end (data) misses
// are partially hidden by out-of-order execution: the first HideWindow
// cycles of any data miss overlap independent work, and data misses that
// fall within the same reorder-buffer span overlap each other (MLP), so only
// the first is charged. Absolute IPC differs from the paper's ChampSim
// baseline; relative speedups and orderings are preserved. See DESIGN.md.
package cpu

import "morrigan/internal/arch"

// StallKind attributes charged stall cycles, feeding Figure 4's
// "% of cycles serving iSTLB accesses" breakdown.
type StallKind int

// Stall attribution classes.
const (
	// StallICache is fetch starvation from instruction cache misses.
	StallICache StallKind = iota
	// StallITLB is instruction translation lookup time: STLB lookups for
	// instruction references and prefetch-buffer lookups on iSTLB misses.
	StallITLB
	// StallIWalk is demand page walks triggered by iSTLB misses.
	StallIWalk
	// StallData is back-end stall time from data misses and data page
	// walks (after overlap discounting).
	StallData
	numStallKinds
)

// NumStallKinds is the number of attribution classes.
const NumStallKinds = int(numStallKinds)

// String names the stall class.
func (k StallKind) String() string {
	switch k {
	case StallICache:
		return "icache"
	case StallITLB:
		return "itlb-lookup"
	case StallIWalk:
		return "iwalk"
	case StallData:
		return "data"
	}
	return "invalid"
}

// Config parameterises the core model.
type Config struct {
	// Width is the dispatch width (Table 1: 4-wide).
	Width int
	// ROB is the reorder buffer size, bounding the memory-level
	// parallelism window for data misses.
	ROB int
	// HideWindow is how many cycles of a data miss out-of-order execution
	// hides under independent work.
	HideWindow arch.Cycle
	// FetchHide is how many cycles of an instruction cache miss the
	// decoupled front end (fetch target queue, fetch-ahead) hides.
	FetchHide arch.Cycle
	// FetchWindow is the fetch-ahead span in instructions: instruction
	// cache misses within one span overlap each other (fetch MSHRs), so
	// only the first is charged. Demand instruction page walks are NOT
	// subject to this window — an untranslated page stops fetch cold,
	// which is the paper's core premise.
	FetchWindow int
}

// DefaultConfig returns the model's default parameters.
func DefaultConfig() Config {
	return Config{Width: 4, ROB: 256, HideWindow: 30, FetchHide: 12, FetchWindow: 64}
}

// Core accumulates the timing of one hardware context (or of two SMT
// contexts sharing a pipeline — the caller interleaves their instructions
// and the dispatch width is shared).
type Core struct {
	cfg     Config
	retired uint64
	stalls  [numStallKinds]arch.Cycle

	// mlpUntil is the instruction index through which an outstanding data
	// miss still covers subsequent data misses.
	mlpUntil uint64
	// fetchUntil is the instruction index through which an outstanding
	// instruction cache miss covers subsequent ones.
	fetchUntil uint64
}

// New builds a core model.
func New(cfg Config) *Core {
	if cfg.Width <= 0 || cfg.ROB <= 0 {
		panic("cpu: width and ROB must be positive")
	}
	return &Core{cfg: cfg}
}

// Retire counts n instructions through the pipeline.
func (c *Core) Retire(n uint64) { c.retired += n }

// FrontEndStall charges a fetch-side stall at its full latency: the in-order
// front end cannot run past it.
func (c *Core) FrontEndStall(kind StallKind, lat arch.Cycle) {
	c.stalls[kind] += lat
}

// FetchMiss charges an instruction cache miss, discounted by the decoupled
// front end: the first FetchHide cycles are hidden by fetch-ahead, and
// misses within one FetchWindow span overlap (fetch MSHRs), so only the
// first is charged. It returns the cycles actually charged.
func (c *Core) FetchMiss(lat arch.Cycle) arch.Cycle {
	if lat <= c.cfg.FetchHide {
		return 0
	}
	if c.retired < c.fetchUntil {
		return 0
	}
	charged := lat - c.cfg.FetchHide
	c.stalls[StallICache] += charged
	c.fetchUntil = c.retired + uint64(c.cfg.FetchWindow)
	return charged
}

// DataStall charges a back-end data-miss latency, discounted by the
// out-of-order hide window and by MLP overlap with outstanding misses. It
// returns the cycles actually charged.
func (c *Core) DataStall(lat arch.Cycle) arch.Cycle {
	if lat <= c.cfg.HideWindow {
		return 0
	}
	if c.retired < c.mlpUntil {
		// Overlaps an outstanding miss within the ROB span.
		return 0
	}
	charged := lat - c.cfg.HideWindow
	c.stalls[StallData] += charged
	c.mlpUntil = c.retired + uint64(c.cfg.ROB)
	return charged
}

// Retired returns the instruction count.
func (c *Core) Retired() uint64 { return c.retired }

// BaseCycles returns the ideal dispatch time of the retired instructions.
func (c *Core) BaseCycles() arch.Cycle {
	w := uint64(c.cfg.Width)
	return arch.Cycle((c.retired + w - 1) / w)
}

// StallCycles returns the charged stall cycles of one class.
func (c *Core) StallCycles(kind StallKind) arch.Cycle { return c.stalls[kind] }

// Cycles returns the total execution time: base dispatch plus all stalls.
func (c *Core) Cycles() arch.Cycle {
	t := c.BaseCycles()
	for _, s := range c.stalls {
		t += s
	}
	return t
}

// IPC returns retired instructions per cycle.
func (c *Core) IPC() float64 {
	cy := c.Cycles()
	if cy == 0 {
		return 0
	}
	return float64(c.retired) / float64(cy)
}

// TranslationCyclePct returns the share of execution time spent serving
// instruction address translation (STLB/PB lookups plus demand instruction
// walks), the metric of Figure 4 and Intel VTune's 5% bottleneck rule.
func (c *Core) TranslationCyclePct() float64 {
	cy := c.Cycles()
	if cy == 0 {
		return 0
	}
	return float64(c.stalls[StallITLB]+c.stalls[StallIWalk]) / float64(cy) * 100
}

// ResetStats clears timing state for the measurement interval.
func (c *Core) ResetStats() {
	c.retired = 0
	c.stalls = [numStallKinds]arch.Cycle{}
	c.mlpUntil = 0
	c.fetchUntil = 0
}
