// Characterize: reproduce the paper's Section 3.3 analysis (Findings 1-3)
// on one workload's instruction STLB miss stream, using the OnISTLBMiss
// observation hook of the public simulator API.
//
// Finding 1: iSTLB misses have limited spatial locality, restricted to a
// small region around the triggering miss.
// Finding 2: most iSTLB misses come from a modest number of pages.
// Finding 3: frequently missing pages have few, highly probable successors.
package main

import (
	"fmt"
	"log"
	"sort"

	"morrigan"
)

func main() {
	workload, ok := morrigan.WorkloadByName("qmm-srv-22")
	if !ok {
		log.Fatal("workload not found")
	}

	// Record the miss stream during a baseline run.
	var stream []uint64
	cfg := morrigan.DefaultConfig()
	cfg.OnISTLBMiss = func(tid morrigan.ThreadID, vpn morrigan.VPN) { stream = append(stream, uint64(vpn)) }
	sim, err := morrigan.NewSimulator(cfg, []morrigan.ThreadSpec{{Reader: workload.NewReader()}})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(1_000_000, 5_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d iSTLB misses observed\n\n", workload.Name, len(stream))

	finding1(stream)
	finding2(stream)
	finding3(stream)
}

// finding1 measures the delta distribution between consecutive misses.
func finding1(stream []uint64) {
	counts := map[uint64]int{}
	for i := 1; i < len(stream); i++ {
		d := stream[i] - stream[i-1]
		if stream[i] < stream[i-1] {
			d = stream[i-1] - stream[i]
		}
		counts[d]++
	}
	total := len(stream) - 1
	cumulative := func(limit uint64) float64 {
		n := 0
		for d, c := range counts {
			if d <= limit {
				n += c
			}
		}
		return float64(n) / float64(total) * 100
	}
	fmt.Println("Finding 1 — spatial locality of consecutive miss deltas:")
	for _, lim := range []uint64{1, 10, 100, 1000} {
		fmt.Printf("  |delta| <= %-5d  %5.1f%% of misses\n", lim, cumulative(lim))
	}
	fmt.Println()
}

// finding2 measures page-frequency skew.
func finding2(stream []uint64) {
	freq := map[uint64]int{}
	for _, p := range stream {
		freq[p]++
	}
	counts := make([]int, 0, len(freq))
	for _, c := range freq {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	target := int(float64(len(stream)) * 0.9)
	cum, pages := 0, 0
	for _, c := range counts {
		cum += c
		pages++
		if cum >= target {
			break
		}
	}
	fmt.Printf("Finding 2 — miss concentration: %d of %d distinct pages cause 90%% of misses\n\n",
		pages, len(freq))
}

// finding3 measures successor predictability for the hottest pages.
func finding3(stream []uint64) {
	succ := map[uint64]map[uint64]int{}
	freq := map[uint64]int{}
	for i := 0; i+1 < len(stream); i++ {
		cur, next := stream[i], stream[i+1]
		freq[cur]++
		m := succ[cur]
		if m == nil {
			m = map[uint64]int{}
			succ[cur] = m
		}
		m[next]++
	}
	type pf struct {
		page uint64
		n    int
	}
	hot := make([]pf, 0, len(freq))
	for p, n := range freq {
		hot = append(hot, pf{p, n})
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].n != hot[j].n {
			return hot[i].n > hot[j].n
		}
		return hot[i].page < hot[j].page
	})
	if len(hot) > 50 {
		hot = hot[:50]
	}
	var first, second float64
	for _, h := range hot {
		var probs []float64
		total := 0
		for _, c := range succ[h.page] {
			total += c
		}
		for _, c := range succ[h.page] {
			probs = append(probs, float64(c)/float64(total))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(probs)))
		first += probs[0]
		if len(probs) > 1 {
			second += probs[1]
		}
	}
	n := float64(len(hot))
	fmt.Printf("Finding 3 — successor predictability of the top %d missing pages:\n", len(hot))
	fmt.Printf("  most frequent successor follows   %5.1f%% of the time\n", first/n*100)
	fmt.Printf("  second most frequent successor    %5.1f%% of the time\n", second/n*100)
	fmt.Println("  (the paper reports 51% / 21% — a Markov predictor can cover most misses)")
}
