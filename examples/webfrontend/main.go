// Webfrontend: a capacity-planning style scenario. A "web front end"
// service (one of the Java-server-like workloads the paper's Figure 2
// motivates) suffers front-end stalls from instruction address translation.
// This example sweeps the candidate hardware options a designer would weigh
// — the prior dSTLB prefetchers, a bigger STLB, ASAP, and Morrigan — at
// comparable hardware budgets, and reports the winner.
package main

import (
	"fmt"
	"log"
	"sort"

	"morrigan"
)

type option struct {
	name string
	cfg  func() morrigan.Config
}

func main() {
	const warmup, measure = 1_000_000, 4_000_000

	workload, ok := morrigan.WorkloadByName("tomcat")
	if !ok {
		log.Fatal("workload not found")
	}

	options := []option{
		{"baseline (no change)", func() morrigan.Config {
			return morrigan.DefaultConfig()
		}},
		{"sequential prefetcher (SP)", func() morrigan.Config {
			c := morrigan.DefaultConfig()
			c.Prefetcher = morrigan.NewSP()
			return c
		}},
		{"Markov prefetcher (MP, 128e)", func() morrigan.Config {
			c := morrigan.DefaultConfig()
			c.Prefetcher = morrigan.NewMP(128, 4)
			return c
		}},
		{"enlarged STLB (+384 entries)", func() morrigan.Config {
			c := morrigan.DefaultConfig()
			c.STLBEntries = 1920
			return c
		}},
		{"ASAP walk acceleration", func() morrigan.Config {
			c := morrigan.DefaultConfig()
			c.Walker.ASAP = true
			return c
		}},
		{"Morrigan (3.8 KB)", func() morrigan.Config {
			c := morrigan.DefaultConfig()
			c.Prefetcher = morrigan.NewMorrigan(morrigan.DefaultPrefetcherConfig())
			return c
		}},
		{"Morrigan + ASAP", func() morrigan.Config {
			c := morrigan.DefaultConfig()
			c.Prefetcher = morrigan.NewMorrigan(morrigan.DefaultPrefetcherConfig())
			c.Walker.ASAP = true
			return c
		}},
	}

	type outcome struct {
		name    string
		cycles  morrigan.Cycle
		ipc     float64
		mpki    float64
		speedup float64
	}
	var results []outcome
	var baseCycles morrigan.Cycle

	for _, opt := range options {
		sim, err := morrigan.NewSimulator(opt.cfg(), []morrigan.ThreadSpec{
			{Reader: workload.NewReader()},
		})
		if err != nil {
			log.Fatal(err)
		}
		st, err := sim.Run(warmup, measure)
		if err != nil {
			log.Fatal(err)
		}
		if baseCycles == 0 {
			baseCycles = st.Cycles
		}
		results = append(results, outcome{
			name:    opt.name,
			cycles:  st.Cycles,
			ipc:     st.IPC,
			mpki:    st.ISTLBMPKI,
			speedup: (float64(baseCycles)/float64(st.Cycles) - 1) * 100,
		})
	}

	sort.Slice(results, func(i, j int) bool { return results[i].cycles < results[j].cycles })

	fmt.Printf("front-end options for %q (%d instructions):\n\n", workload.Name, uint64(measure))
	fmt.Printf("%-32s %10s %7s %12s %9s\n", "option", "cycles", "IPC", "iSTLB MPKI", "speedup")
	for _, r := range results {
		fmt.Printf("%-32s %10d %7.3f %12.2f %+8.2f%%\n", r.name, r.cycles, r.ipc, r.mpki, r.speedup)
	}
	fmt.Printf("\nbest option: %s\n", results[0].name)
}
