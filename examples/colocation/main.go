// Colocation: the paper's Section 6.6 scenario — two server workloads
// sharing an SMT core, which doubles the pressure on the shared STLB and
// caches. The example measures how much Morrigan recovers, with the IRIP
// tables at the single-thread size and at the doubled (7.5 KB) size the
// paper recommends for SMT.
package main

import (
	"fmt"
	"log"

	"morrigan"
)

func main() {
	const warmup, measure = 1_000_000, 4_000_000

	pair := morrigan.SMTWorkloadPairs(1, 7)[0]
	a, b := pair[0], pair[1]

	run := func(label string, prefetcher morrigan.Prefetcher) morrigan.Stats {
		cfg := morrigan.DefaultConfig()
		cfg.Prefetcher = prefetcher
		sim, err := morrigan.NewSimulator(cfg, []morrigan.ThreadSpec{
			{Reader: a.NewReader()},
			// The second process lives in its own address space.
			{Reader: b.NewReader(), VAOffset: 1 << 40},
		})
		if err != nil {
			log.Fatal(err)
		}
		st, err := sim.Run(warmup, measure)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s IPC %.3f  iSTLB MPKI %.2f  PB hits %d\n",
			label, st.IPC, st.ISTLBMPKI, st.PBHits)
		return st
	}

	fmt.Printf("colocating %s with %s on a 2-thread SMT core\n\n", a.Name, b.Name)

	// Single-thread reference for thread 0's workload.
	solo, err := morrigan.NewSimulator(morrigan.DefaultConfig(), []morrigan.ThreadSpec{
		{Reader: a.NewReader()},
	})
	if err != nil {
		log.Fatal(err)
	}
	soloStats, err := solo.Run(warmup, measure)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s IPC %.3f  iSTLB MPKI %.2f\n", a.Name+" alone", soloStats.IPC, soloStats.ISTLBMPKI)

	base := run("colocated, no prefetching", nil)
	one := run("colocated + Morrigan 1x", morrigan.NewMorrigan(morrigan.DefaultPrefetcherConfig()))
	two := run("colocated + Morrigan 2x", morrigan.NewMorrigan(morrigan.ScaledPrefetcherConfig(2)))

	speedup := func(st morrigan.Stats) float64 {
		return (float64(base.Cycles)/float64(st.Cycles) - 1) * 100
	}
	fmt.Printf("\nMorrigan 1x tables: %+.2f%%   Morrigan 2x tables (paper's SMT config): %+.2f%%\n",
		speedup(one), speedup(two))
}
