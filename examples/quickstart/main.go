// Quickstart: run one server workload with and without Morrigan and report
// the speedup, miss coverage and page-walk savings — the paper's headline
// metrics on a single workload.
package main

import (
	"fmt"
	"log"

	"morrigan"
)

func main() {
	const warmup, measure = 1_000_000, 5_000_000

	workload, ok := morrigan.WorkloadByName("qmm-srv-30")
	if !ok {
		log.Fatal("workload not found")
	}

	run := func(prefetcher morrigan.Prefetcher) morrigan.Stats {
		cfg := morrigan.DefaultConfig()
		cfg.Prefetcher = prefetcher
		sim, err := morrigan.NewSimulator(cfg, []morrigan.ThreadSpec{
			{Reader: workload.NewReader()},
		})
		if err != nil {
			log.Fatal(err)
		}
		stats, err := sim.Run(warmup, measure)
		if err != nil {
			log.Fatal(err)
		}
		return stats
	}

	fmt.Printf("workload %s: %d instructions measured after %d warmup\n\n",
		workload.Name, uint64(measure), uint64(warmup))

	base := run(nil)
	fmt.Printf("baseline (no iSTLB prefetching):\n")
	fmt.Printf("  IPC %.3f, iSTLB MPKI %.2f, %d demand instruction walks (%d memory refs)\n\n",
		base.IPC, base.ISTLBMPKI, base.DemandIWalks, base.DemandIWalkRefs)

	mor := run(morrigan.NewMorrigan(morrigan.DefaultPrefetcherConfig()))
	fmt.Printf("with Morrigan (%.2f KB of prediction state):\n",
		morrigan.NewMorrigan(morrigan.DefaultPrefetcherConfig()).StorageBytes()/1024)
	fmt.Printf("  IPC %.3f, %d of %d iSTLB misses served by the prefetch buffer\n",
		mor.IPC, mor.PBHits, mor.ISTLBMisses)
	fmt.Printf("  PB hit attribution: IRIP %d, SDP %d\n", mor.IRIPHits, mor.SDPHits)

	speedup := (float64(base.Cycles)/float64(mor.Cycles) - 1) * 100
	walkCut := 100 * (1 - float64(mor.DemandIWalkRefs)/float64(base.DemandIWalkRefs))
	fmt.Printf("\nspeedup: %+.2f%%   demand page-walk memory references cut by %.1f%%\n",
		speedup, walkCut)
}
