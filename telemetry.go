package morrigan

import (
	"io"

	"morrigan/internal/runner"
	"morrigan/internal/telemetry"
)

// Telemetry observability layer (see internal/telemetry): interval
// time-series sampling of live counters, a bounded event trace of the
// prefetch lifecycle and page walks, and log2-bucketed latency histograms,
// emitted as schema-versioned JSON Lines.
type (
	// TelemetryConfig parameterises a probe (sampling interval, event-ring
	// capacity).
	TelemetryConfig = telemetry.Config
	// TelemetryProbe collects one simulation's telemetry; attach it through
	// Config.Probe. A probe belongs to exactly one simulator.
	TelemetryProbe = telemetry.Probe
	// TelemetrySample is one emitted time-series point (per-interval counter
	// deltas plus derived rates).
	TelemetrySample = telemetry.IntervalSample
	// TelemetryEvent is one traced prefetch-lifecycle or page-walk event.
	TelemetryEvent = telemetry.Event
	// CampaignTelemetry attaches per-job telemetry collection to a campaign:
	// one probe and one JSONL file per job.
	CampaignTelemetry = runner.TelemetryOptions
)

// TelemetrySchemaVersion identifies the telemetry JSONL schema.
const TelemetrySchemaVersion = telemetry.SchemaVersion

// DefaultTelemetryConfig returns the default probe parameters
// (100k-instruction sampling interval, 4096-event ring).
func DefaultTelemetryConfig() TelemetryConfig { return telemetry.DefaultConfig() }

// NewTelemetryProbe builds a telemetry probe from cfg.
func NewTelemetryProbe(cfg TelemetryConfig) *TelemetryProbe { return telemetry.NewProbe(cfg) }

// ParseTelemetryJSONL decodes and validates a telemetry JSONL stream,
// returning the decoded lines (header, samples, events, histograms,
// summary) for inspection.
func ParseTelemetryJSONL(r io.Reader) ([]map[string]any, error) {
	return telemetry.ParseJSONL(r)
}
