package morrigan_test

import (
	"bytes"
	"testing"

	"morrigan"
)

// TestFileTraceMatchesGenerator round-trips a workload through the trace
// file format and checks that replaying the file produces exactly the same
// simulation results as the live generator — an end-to-end check of the
// format, the reader, and simulator determinism.
func TestFileTraceMatchesGenerator(t *testing.T) {
	const n = 300_000
	w := morrigan.QMMWorkloads()[8]

	// Serialise n instructions.
	var buf bytes.Buffer
	tw, err := morrigan.NewTraceWriter(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	gen := w.NewReader()
	var rec morrigan.TraceRecord
	for i := 0; i < n; i++ {
		if err := gen.Next(&rec); err != nil {
			t.Fatal(err)
		}
		if err := tw.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	run := func(r morrigan.TraceReader) morrigan.Stats {
		cfg := morrigan.DefaultConfig()
		cfg.Prefetcher = morrigan.NewMorrigan(morrigan.DefaultPrefetcherConfig())
		s, err := morrigan.NewSimulator(cfg, []morrigan.ThreadSpec{{Reader: r}})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run(n/4, n/2)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	fromFile, err := morrigan.NewTraceFileReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a := run(morrigan.LimitTrace(w.NewReader(), n))
	b := run(fromFile)
	if a != b {
		t.Fatalf("file-driven run differs from generator-driven run:\n%+v\n%+v", a, b)
	}
}

// TestKitchenSinkConfiguration exercises every optional feature at once:
// SMT colocation, Morrigan with doubled tables, FNL+MMA with translation
// costs, a hashed page table, periodic context switches, ASAP walks and
// correcting walks. The point is that the features compose without
// violating basic accounting invariants.
func TestKitchenSinkConfiguration(t *testing.T) {
	pair := morrigan.SMTWorkloadPairs(1, 3)[0]
	cfg := morrigan.DefaultConfig()
	cfg.Prefetcher = morrigan.NewMorrigan(morrigan.ScaledPrefetcherConfig(2))
	cfg.ICachePrefetcher = morrigan.NewFNLMMA()
	cfg.ICacheTLBCost = true
	cfg.PageTable = morrigan.PageTableHashed
	cfg.ContextSwitchInterval = 150_000
	cfg.Walker.ASAP = true
	cfg.CorrectingWalks = true

	s, err := morrigan.NewSimulator(cfg, []morrigan.ThreadSpec{
		{Reader: pair[0].NewReader()},
		{Reader: pair[1].NewReader(), VAOffset: 1 << 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(150_000, 600_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 600_000 {
		t.Fatalf("Instructions = %d", st.Instructions)
	}
	if st.IPC <= 0 || st.IPC > 4 {
		t.Fatalf("IPC = %v", st.IPC)
	}
	if st.ISTLBMisses == 0 || st.PBHits == 0 {
		t.Fatalf("prefetching inactive: %+v", st)
	}
	if st.ContextSwitches == 0 {
		t.Fatal("no context switches")
	}
	if st.DemandIWalks+st.PBHits != st.ISTLBMisses {
		t.Fatalf("accounting identity broken: walks %d + hits %d != misses %d",
			st.DemandIWalks, st.PBHits, st.ISTLBMisses)
	}
}

// TestAccountingIdentities checks cross-component bookkeeping on a plain
// run: every iSTLB miss either hits the PB or demand-walks; MPKI fields are
// consistent with raw counts.
func TestAccountingIdentities(t *testing.T) {
	w := morrigan.QMMWorkloads()[25]
	cfg := morrigan.DefaultConfig()
	cfg.Prefetcher = morrigan.NewMorrigan(morrigan.DefaultPrefetcherConfig())
	s, err := morrigan.NewSimulator(cfg, []morrigan.ThreadSpec{{Reader: w.NewReader()}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(200_000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.DemandIWalks+st.PBHits != st.ISTLBMisses {
		t.Fatalf("misses %d != walks %d + PB hits %d", st.ISTLBMisses, st.DemandIWalks, st.PBHits)
	}
	wantMPKI := float64(st.ISTLBMisses) * 1000 / float64(st.Instructions)
	if diff := st.ISTLBMPKI - wantMPKI; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ISTLBMPKI %v != %v", st.ISTLBMPKI, wantMPKI)
	}
	if st.IRIPHits+st.SDPHits > st.PBHits {
		t.Fatalf("module hits %d+%d exceed PB hits %d", st.IRIPHits, st.SDPHits, st.PBHits)
	}
	// Demand instruction walk references come only from those walks.
	if st.DemandIWalkRefs < st.DemandIWalks {
		t.Fatalf("walk refs %d < walks %d", st.DemandIWalkRefs, st.DemandIWalks)
	}
}
