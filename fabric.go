package morrigan

import (
	"morrigan/internal/fabric"
	"morrigan/internal/resultstore"
	"morrigan/internal/runner"
)

// Distributed campaign fabric (see internal/fabric): a coordinator that
// enumerates a campaign's jobs and serves a lease/heartbeat/submit HTTP API,
// plus stateless workers that pull jobs, simulate them with the campaign
// runner, and stream results back. Merged campaign output is byte-identical
// to a single-process run at any worker count.
type (
	// FabricCoordinator owns a campaign's distributed execution. Attach it
	// to CampaignOptions.Remote (or ExperimentOptions.Remote), Start it on
	// an address, and point FabricWorkers at that address.
	FabricCoordinator = fabric.Coordinator
	// FabricCoordinatorOptions configures a coordinator (lease TTL, corpus
	// serving, logging).
	FabricCoordinatorOptions = fabric.CoordinatorOptions
	// FabricStatus is the coordinator's /fabric/status snapshot.
	FabricStatus = fabric.CoordinatorStatus
	// FabricWorker is a stateless pull-based campaign worker.
	FabricWorker = fabric.Worker
	// FabricWorkerOptions configures a worker (coordinator URL, local
	// corpus store, logging).
	FabricWorkerOptions = fabric.WorkerOptions
)

// NewFabricCoordinator returns a detached coordinator; Start it to serve.
func NewFabricCoordinator(opt FabricCoordinatorOptions) *FabricCoordinator {
	return fabric.NewCoordinator(opt)
}

// NewFabricWorker returns a worker; its Run method pulls jobs until the
// context ends or the coordinator goes away.
func NewFabricWorker(opt FabricWorkerOptions) (*FabricWorker, error) {
	return fabric.NewWorker(opt)
}

// Durable result storage (see internal/resultstore): an on-disk
// content-addressed store of completed simulation results keyed by canonical
// job key, shared across runs and machines.
type (
	// CampaignResultStore is the durable result layer campaigns consult and
	// fill (CampaignOptions.Store / ExperimentOptions.Store).
	CampaignResultStore = runner.ResultStore
	// ResultStore is the on-disk implementation.
	ResultStore = resultstore.Store
	// ResultStoreRecord is one stored result with its key components.
	ResultStoreRecord = resultstore.Record
)

// OpenResultStore opens (creating if necessary) an on-disk result store,
// verifying every stored record's checksum and key derivation on the way in.
func OpenResultStore(dir string) (*ResultStore, error) {
	return resultstore.Open(dir)
}
