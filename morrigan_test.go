package morrigan_test

import (
	"bytes"
	"io"
	"testing"

	"morrigan"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	w, ok := morrigan.WorkloadByName("qmm-srv-40")
	if !ok {
		t.Fatal("workload missing")
	}
	cfg := morrigan.DefaultConfig()
	cfg.Prefetcher = morrigan.NewMorrigan(morrigan.DefaultPrefetcherConfig())
	s, err := morrigan.NewSimulator(cfg, []morrigan.ThreadSpec{{Reader: w.NewReader()}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(300_000, 1_200_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 1_200_000 || st.PBHits == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPublicBaselineConstructors(t *testing.T) {
	for name, pf := range map[string]morrigan.Prefetcher{
		"sp":    morrigan.NewSP(),
		"asp":   morrigan.NewASP(64),
		"dp":    morrigan.NewDP(64),
		"mp":    morrigan.NewMP(128, 4),
		"mpinf": morrigan.NewUnboundedMP(0),
	} {
		if pf == nil {
			t.Errorf("%s: nil prefetcher", name)
		}
	}
	for name, pf := range map[string]morrigan.ICachePrefetcher{
		"nextline": morrigan.NewNextLinePrefetcher(),
		"fnlmma":   morrigan.NewFNLMMA(),
		"epi":      morrigan.NewEPI(),
		"djolt":    morrigan.NewDJolt(),
	} {
		if pf == nil {
			t.Errorf("%s: nil I-cache prefetcher", name)
		}
	}
}

func TestPublicPrefetcherConfigs(t *testing.T) {
	def := morrigan.NewMorrigan(morrigan.DefaultPrefetcherConfig())
	mono := morrigan.NewMorrigan(morrigan.MonoPrefetcherConfig())
	big := morrigan.NewMorrigan(morrigan.ScaledPrefetcherConfig(2))
	if def.Name() != "Morrigan" || mono.Name() != "Morrigan-mono" {
		t.Fatal("prefetcher names wrong")
	}
	if big.StorageBits() <= def.StorageBits() {
		t.Fatal("scaled config not larger")
	}
}

func TestPublicWorkloadSuites(t *testing.T) {
	if len(morrigan.QMMWorkloads()) != 45 {
		t.Fatal("QMM suite size")
	}
	if len(morrigan.SPECWorkloads()) == 0 || len(morrigan.JavaWorkloads()) == 0 {
		t.Fatal("suites empty")
	}
	pairs := morrigan.SMTWorkloadPairs(5, 1)
	if len(pairs) != 5 {
		t.Fatal("pairs")
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	params := morrigan.QMMWorkloads()[0].Params
	gen := morrigan.NewServerTrace(params)
	var buf bytes.Buffer
	tw, err := morrigan.NewTraceWriter(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	var rec morrigan.TraceRecord
	for i := 0; i < 1000; i++ {
		if err := gen.Next(&rec); err != nil {
			t.Fatal(err)
		}
		if err := tw.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := morrigan.NewTraceFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if err := r.Next(&rec); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 1000 {
		t.Fatalf("read %d records", n)
	}
}

func TestPublicLimitTrace(t *testing.T) {
	gen := morrigan.NewServerTrace(morrigan.QMMWorkloads()[0].Params)
	lim := morrigan.LimitTrace(gen, 10)
	var rec morrigan.TraceRecord
	n := 0
	for lim.Next(&rec) == nil {
		n++
		if n > 11 {
			break
		}
	}
	if n != 10 {
		t.Fatalf("limited trace yielded %d records", n)
	}
}

func TestPublicExperiments(t *testing.T) {
	ids := morrigan.ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments", len(ids))
	}
	tab, err := morrigan.RunExperiment("table1", morrigan.QuickExperimentOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	tab.Render(&sb)
	if sb.Len() == 0 {
		t.Fatal("empty render")
	}
	if _, err := morrigan.RunExperiment("nope", morrigan.QuickExperimentOptions()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPolicyConstants(t *testing.T) {
	if morrigan.PolicyRLFU.String() != "RLFU" || morrigan.PolicyLRU.String() != "LRU" {
		t.Fatal("policy constants wrong")
	}
	cfg := morrigan.DefaultPrefetcherConfig()
	cfg.Policy = morrigan.PolicyLFU
	if morrigan.NewMorrigan(cfg) == nil {
		t.Fatal("nil prefetcher")
	}
}
