// Command morrigansim runs one or more workloads through the simulator under
// a chosen iSTLB-prefetching configuration and prints the measurement
// snapshots.
//
// Examples:
//
//	morrigansim -workload qmm-srv-07 -prefetcher morrigan
//	morrigansim -workload qmm-srv-07 -prefetcher none -perfect
//	morrigansim -workload qmm-srv-03 -smt qmm-srv-19 -prefetcher morrigan2x
//	morrigansim -workload cassandra -icache fnlmma -icache-tlb-cost
//	morrigansim -trace trace.mgt -prefetcher sp
//	morrigansim -workload qmm-srv-01,qmm-srv-02,qmm-srv-03 -jobs 3 -json -
//	morrigansim -workload qmm-srv-01 -corpus corpus/ -prefetcher morrigan
//	morrigansim -prefetcher morrigan -dump-config spec.json
//	morrigansim -workload qmm-srv-07 -config spec.json
//	morrigansim -workload qmm-srv-01,qmm-srv-02 -journal run.journal
//	morrigansim -workload qmm-srv-01,qmm-srv-02 -journal run.journal -resume
//	morrigansim -workload qmm-srv-01,qmm-srv-02 -results results/
//	morrigansim -workload qmm-srv-01,qmm-srv-02 -fabric :9090
//	morrigansim -workload qmm-srv-01 -smt qmm-srv-19 -dry-run
//	morrigansim -workload qmm-srv-01,qmm-srv-02 -trace-out trace.json
//	morrigansim -workload qmm-srv-01 -measure 10000000 -sample -corpus corpus/
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"morrigan"
	"morrigan/internal/profile"
)

func main() {
	var (
		workload  = flag.String("workload", "qmm-srv-01", "comma-separated built-in workload names (see -list)")
		traceFile = flag.String("trace", "", "trace file to execute instead of a built-in workload")
		smt       = flag.String("smt", "", "colocate this second workload on an SMT thread of every run")
		pf        = flag.String("prefetcher", "none", "iSTLB prefetcher: none|sp|asp|dp|mp|mp2inf|mpinf|morrigan|morrigan2x|mono")
		icachePf  = flag.String("icache", "nextline", "I-cache prefetcher: nextline|fnlmma|epi|djolt")
		icacheTLB = flag.Bool("icache-tlb-cost", false, "charge address translation for page-crossing I-cache prefetches")
		perfect   = flag.Bool("perfect", false, "perfect iSTLB (all instruction lookups hit)")
		p2tlb     = flag.Bool("p2tlb", false, "prefetch directly into the STLB instead of the PB")
		asap      = flag.Bool("asap", false, "enable ASAP-style parallel page walks")
		stlb      = flag.Int("stlb", 1536, "STLB entries")
		pb        = flag.Int("pb", 64, "prefetch buffer entries")
		warmup    = flag.Uint64("warmup", 1_000_000, "warmup instructions")
		measure   = flag.Uint64("measure", 5_000_000, "measured instructions")
		jobs      = flag.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		jsonOut   = flag.String("json", "", "write per-simulation results as JSON to a file ('-' for stdout)")
		csvOut    = flag.String("csv", "", "write per-simulation results as CSV to a file ('-' for stdout)")
		telemOut  = flag.String("telemetry", "", "write per-simulation telemetry JSONL files into this directory")
		interval  = flag.Uint64("interval", 0, "telemetry sampling interval in instructions (0 = default 100000)")
		events    = flag.Int("events", 0, "telemetry event-ring capacity (0 = default 4096, negative disables the event trace)")
		serve     = flag.String("serve", "", "serve live observability HTTP on this address (e.g. :8080): /metrics, /campaign, /events, /healthz, /debug/pprof")
		serveJobs = flag.String("serve-jobs", "", "run as a job-API daemon on this address instead of simulating: multi-tenant HTTP campaign API plus the -serve observability surface (honours -serve-token, -results, -corpus, -jobs, -fabric)")
		serveTok  = flag.String("serve-token", "dev-token", "bearer token for the single 'default' tenant in -serve-jobs mode")
		benchOut  = flag.String("bench", "", "write a BENCH_*.json throughput summary to this file ('-' for stdout)")
		corpus    = flag.String("corpus", "", "feed workloads from materialised trace corpora in this directory (built on first use)")
		corpusMB  = flag.Int64("corpus-cache-mb", 0, "decoded-chunk cache budget in MiB shared by all jobs (0 = default 512)")
		confIn    = flag.String("config", "", "load the machine spec from this JSON file (overrides the machine flags)")
		confOut   = flag.String("dump-config", "", "write the machine spec as JSON to this file ('-' for stdout) and exit")
		journal   = flag.String("journal", "", "checkpoint completed simulations to this journal file")
		resume    = flag.Bool("resume", false, "serve already-journaled results from -journal instead of re-simulating")
		results   = flag.String("results", "", "durable result store directory: reuse stored results across runs and persist new ones")
		fabricURL = flag.String("fabric", "", "serve a distributed-campaign coordinator on this address (e.g. :9090) and delegate jobs to fabric workers")
		traceOut  = flag.String("trace-out", "", "write a distributed trace of every job's lifecycle phases to this file (.jsonl for JSONL, otherwise Chrome trace-event JSON for Perfetto)")
		sample    = flag.Bool("sample", false, "representative-interval sampling: time only clustered representative slices and report extrapolated stats with 95% CIs")
		sampleInt = flag.Uint64("sample-interval", 0, "sampling interval length in instructions (0 = default 100000; -measure must be a multiple)")
		sampleK   = flag.Int("sample-clusters", 0, "sampling cluster count / representative slices per run (0 = default 8)")
		sampleWu  = flag.Int64("sample-warmup", -1, "timed slice warmup instructions before each representative (-1 = default 25000, 0 = none)")
		dryRun    = flag.Bool("dry-run", false, "print enumerated jobs (key, machine and workload hashes, scale) without simulating")
		verbose   = flag.Bool("v", false, "print per-simulation progress with ETA")
		list      = flag.Bool("list", false, "list built-in workloads and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file when the run completes")
		refLoop   = flag.Bool("reference-loop", false, "run the per-record reference loop instead of the batched pipeline (verification; Stats are bit-identical, only throughput differs)")
	)
	flag.Parse()

	stopProf, profErr := profile.Start(*cpuProf, *memProf)
	if profErr != nil {
		fatal("%v", profErr)
	}
	flushProfiles := func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "morrigansim:", err)
		}
	}
	defer flushProfiles()

	if *list {
		var names []string
		for _, w := range morrigan.QMMWorkloads() {
			names = append(names, w.Name)
		}
		for _, w := range morrigan.SPECWorkloads() {
			names = append(names, w.Name)
		}
		for _, w := range morrigan.JavaWorkloads() {
			names = append(names, w.Name)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	if *serveJobs != "" {
		serveJobsDaemon(*serveJobs, *serveTok, *results, *corpus, *fabricURL, *jobs, *corpusMB)
		return
	}

	// The machine under test is a declarative spec: built from the flags, or
	// loaded verbatim from -config. Either way Build validates it before any
	// simulation launches.
	spec := specFromFlags(*pf, *icachePf, *perfect, *p2tlb, *asap, *icacheTLB, *stlb, *pb)
	pfLabel := *pf
	if *confIn != "" {
		f, err := os.Open(*confIn)
		if err != nil {
			fatal("%v", err)
		}
		spec, err = morrigan.LoadMachineSpec(f)
		f.Close()
		if err != nil {
			fatal("config %s: %v", *confIn, err)
		}
		// The machine came from the spec file, so the displayed prefetcher
		// must too — the -prefetcher flag did not shape this run.
		switch {
		case spec.PerfectISTLB:
			pfLabel = "perfect"
		case spec.Prefetcher.Kind == "":
			pfLabel = "none"
		default:
			pfLabel = spec.Prefetcher.Kind
		}
	}
	if _, err := spec.Build(); err != nil {
		fatal("%v", err)
	}
	if *confOut != "" {
		var w io.Writer = os.Stdout
		if *confOut != "-" {
			f, err := os.Create(*confOut)
			if err != nil {
				fatal("%v", err)
			}
			defer f.Close()
			w = f
		}
		if err := morrigan.SaveMachineSpec(w, spec); err != nil {
			fatal("%v", err)
		}
		return
	}

	var store *morrigan.CorpusStore
	if *corpus != "" {
		var err error
		store, err = morrigan.OpenCorpusStore(morrigan.CorpusOptions{
			Dir:        *corpus,
			CacheBytes: *corpusMB << 20,
		})
		if err != nil {
			fatal("%v", err)
		}
		defer store.Close()
	}

	cjobs := buildJobs(*workload, *traceFile, *smt, spec, *warmup, *measure)
	if *refLoop {
		// Instrumented jobs opt out of keyed reuse (journal/store/cache), so
		// a reference-loop run always simulates — exactly what the CI
		// equivalence gate wants.
		for i := range cjobs {
			cjobs[i].Instrument = func(cfg *morrigan.Config) { cfg.ReferenceLoop = true }
		}
	}
	var pol *morrigan.SamplingPolicy
	if *sample {
		p := morrigan.DefaultSamplingPolicy()
		if *sampleInt != 0 {
			p.Interval = *sampleInt
		}
		if *sampleK != 0 {
			p.Clusters = *sampleK
		}
		if *sampleWu >= 0 {
			p.SliceWarmup = uint64(*sampleWu)
		}
		if err := p.Validate(*measure); err != nil {
			fatal("%v", err)
		}
		pol = &p
		for i := range cjobs {
			// Sampling needs a single workload-described stream: trace-file
			// jobs (NewThreads) and SMT pairs must simulate in full.
			if cjobs[i].NewThreads != nil || len(cjobs[i].Workloads) != 1 {
				fatal("-sample requires single-workload jobs (no -trace, no -smt)")
			}
			cjobs[i].Sampling = pol
		}
	}
	if *dryRun {
		for _, j := range cjobs {
			fmt.Println(j.Describe())
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opt := morrigan.CampaignOptions{Workers: *jobs}
	var tracer *morrigan.TraceRecorder
	if *traceOut != "" {
		tracer = morrigan.NewTraceRecorder("")
		opt.Spans = tracer
	}
	var profiles *morrigan.SamplingProfileStore
	if pol != nil && *corpus != "" {
		// Profile artifacts live beside the trace corpus so repeated sampled
		// campaigns skip the functional profiling pass.
		var err error
		profiles, err = morrigan.OpenSamplingProfileStore(filepath.Join(*corpus, "profiles"))
		if err != nil {
			fatal("profiles: %v", err)
		}
		opt.Profiles = profiles
	}
	if store != nil {
		opt.NewReader = func(w morrigan.Workload) (morrigan.TraceReader, error) {
			c, err := store.Materialize(w, *warmup+*measure)
			if err != nil {
				return nil, fmt.Errorf("corpus %s: %w", w.Name, err)
			}
			return c.NewReader(), nil
		}
	}
	if *journal != "" {
		jn, err := morrigan.OpenCampaignJournal(*journal, *resume)
		if err != nil {
			fatal("journal: %v", err)
		}
		defer jn.Close()
		if *resume && jn.Len() > 0 {
			fmt.Fprintf(os.Stderr, "morrigansim: resuming with %d journaled results\n", jn.Len())
		}
		opt.Journal = jn
	} else if *resume {
		fatal("-resume requires -journal")
	}
	if *verbose {
		opt.Progress = morrigan.CampaignWriterProgress(os.Stderr)
	}
	if *telemOut != "" {
		opt.Telemetry = &morrigan.CampaignTelemetry{
			Dir:    *telemOut,
			Config: morrigan.TelemetryConfig{Interval: *interval, EventBuffer: *events},
		}
	}
	if *results != "" {
		rs, err := morrigan.OpenResultStore(*results)
		if err != nil {
			fatal("results: %v", err)
		}
		if rs.Len() > 0 || rs.Skipped() > 0 {
			fmt.Fprintf(os.Stderr, "morrigansim: result store holds %d reusable results (%d unverifiable skipped)\n",
				rs.Len(), rs.Skipped())
		}
		opt.Store = rs
	}
	var srv *morrigan.ObservabilityServer
	if *serve != "" {
		srv = morrigan.NewObservabilityServer()
		addr, err := srv.Start(*serve)
		if err != nil {
			fatal("serve: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "morrigansim: observability on http://%s/metrics\n", addr)
		opt.Observer = srv
		if opt.Journal != nil {
			srv.AddReadiness("journal", opt.Journal.Writable)
		}
		if pol != nil {
			srv.AddGaugeSource(morrigan.SamplingGauges(profiles))
		}
	}
	if *fabricURL != "" {
		coord := morrigan.NewFabricCoordinator(morrigan.FabricCoordinatorOptions{
			Corpus: store,
			Log:    os.Stderr,
			Spans:  tracer,
		})
		addr, err := coord.Start(*fabricURL)
		if err != nil {
			fatal("fabric: %v", err)
		}
		defer coord.Close()
		fmt.Fprintf(os.Stderr, "morrigansim: fabric coordinator on http://%s/fabric/status — start workers with: fabric work -coordinator http://%s\n", addr, addr)
		opt.Remote = coord
		if srv != nil {
			srv.AddGaugeSource(coord.Gauges)
		}
	}
	campaignResults, err := morrigan.RunCampaign(ctx, cjobs, opt)

	for i, res := range campaignResults {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "morrigansim: %s: %v\n", res.Job.Workload, res.Err)
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		printStats(res.Job.Workload, pfLabel, res.Stats)
		if o := res.Sampling; o != nil {
			fmt.Printf("sampled         %d/%d intervals timed (%d instr timed, %d fast-forwarded)\n",
				o.Slices, o.Intervals, o.TimedInstructions, o.FastForwarded)
			fmt.Printf("ci95            IPC ±%.4f, iSTLB MPKI ±%.4f, dSTLB MPKI ±%.4f\n",
				o.CI95.IPC, o.CI95.ISTLBMPKI, o.CI95.DSTLBMPKI)
		}
		if res.Reused != "" {
			fmt.Printf("reused          %s\n", res.Reused)
		}
		if res.TelemetryPath != "" {
			fmt.Printf("telemetry       %s\n", res.TelemetryPath)
		}
	}
	writeCampaign(*jsonOut, campaignResults, (*morrigan.Campaign).WriteJSON)
	writeCampaign(*csvOut, campaignResults, (*morrigan.Campaign).WriteCSV)
	writeBench(*benchOut, campaignResults, store, tracer)
	if tracer != nil {
		if err := morrigan.WriteTraceFile(*traceOut, tracer.Spans()); err != nil {
			fatal("trace-out: %v", err)
		}
		fmt.Fprintf(os.Stderr, "morrigansim: wrote %d trace spans to %s\n", tracer.Len(), *traceOut)
	}
	if err != nil {
		flushProfiles()
		os.Exit(1)
	}
}

// writeBench stamps the campaign's throughput summary (the BENCH_*.json
// trajectory artifact) to path ('-' for stdout); an empty path is a no-op.
func writeBench(path string, results []morrigan.CampaignResult, store *morrigan.CorpusStore, tracer *morrigan.TraceRecorder) {
	if path == "" {
		return
	}
	c := morrigan.Campaign{Schema: morrigan.CampaignSchemaVersion}
	for _, res := range results {
		c.Records = append(c.Records, morrigan.NewCampaignRecord(res))
	}
	b := morrigan.NewCampaignBench(c)
	if tracer != nil {
		b.Phases = morrigan.TraceBreakdown(tracer.Spans())
	}
	if store != nil {
		cs := store.CacheStats()
		b.TraceSupply = &morrigan.CampaignTraceSupply{
			CorpusDir:      store.Dir(),
			CacheGets:      cs.Gets,
			CacheHits:      cs.Hits,
			CacheDecodes:   cs.Decodes,
			CacheEvictions: cs.Evictions,
			ResidentBytes:  cs.ResidentBytes,
		}
	}
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := b.WriteJSON(w); err != nil {
		fatal("%v", err)
	}
}

// writeCampaign emits the campaign's machine-readable results to path ('-'
// for stdout) using the given emitter; an empty path is a no-op.
func writeCampaign(path string, results []morrigan.CampaignResult, emit func(*morrigan.Campaign, io.Writer) error) {
	if path == "" {
		return
	}
	c := morrigan.Campaign{Schema: morrigan.CampaignSchemaVersion}
	for _, res := range results {
		c.Records = append(c.Records, morrigan.NewCampaignRecord(res))
	}
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := emit(&c, w); err != nil {
		fatal("%v", err)
	}
}

// specFromFlags assembles the declarative machine spec the flags describe:
// the Table 1 machine with the named iSTLB and I-cache prefetchers and the
// geometry overrides applied. Unknown prefetcher names fail immediately,
// before any simulation launches.
func specFromFlags(pf, icachePf string, perfect, p2tlb, asap, icacheTLB bool, stlb, pb int) morrigan.MachineSpec {
	spec := morrigan.DefaultMachineSpec()
	spec.PerfectISTLB = perfect
	spec.PrefetchIntoSTLB = p2tlb
	spec.Walker.ASAP = asap
	spec.STLBEntries = stlb
	spec.PBEntries = pb
	spec.ICacheTLBCost = icacheTLB

	switch pf {
	case "none":
	case "sp":
		spec.Prefetcher = morrigan.SPSpec()
	case "asp":
		spec.Prefetcher = morrigan.ASPSpec(440)
	case "dp":
		spec.Prefetcher = morrigan.DPSpec(648)
	case "mp":
		spec.Prefetcher = morrigan.MPSpec(128, 4)
	case "mp2inf":
		spec.Prefetcher = morrigan.UnboundedMPSpec(2)
	case "mpinf":
		spec.Prefetcher = morrigan.UnboundedMPSpec(0)
	case "morrigan":
		spec.Prefetcher = morrigan.MorriganMachineSpec(morrigan.DefaultPrefetcherConfig())
	case "morrigan2x":
		spec.Prefetcher = morrigan.MorriganMachineSpec(morrigan.ScaledPrefetcherConfig(2))
	case "mono":
		spec.Prefetcher = morrigan.MorriganMachineSpec(morrigan.MonoPrefetcherConfig())
	default:
		fatal("unknown prefetcher %q", pf)
	}

	switch icachePf {
	case "nextline":
	case "fnlmma":
		spec.ICachePrefetcher = morrigan.FNLMMASpec()
	case "epi":
		spec.ICachePrefetcher = morrigan.EPISpec()
	case "djolt":
		spec.ICachePrefetcher = morrigan.DJoltSpec()
	default:
		fatal("unknown I-cache prefetcher %q", icachePf)
	}
	return spec
}

// buildJobs enumerates one campaign job per requested workload (or one for
// the trace file), optionally colocating the -smt workload on every run.
// Workload jobs are pure data — machine spec plus workload specs — so they
// carry the canonical identity -journal/-resume keys on (corpus feeding, when
// enabled, rides CampaignOptions.NewReader). The -trace job streams records
// from a file the workload vocabulary cannot describe, so it uses the
// NewThreads escape hatch and always executes; its SMT sibling, if any, runs
// from the live generator.
func buildJobs(workload, traceFile, smt string, spec morrigan.MachineSpec, warmup, measure uint64) []morrigan.CampaignJob {
	var smtSpecs []morrigan.Workload
	if smt != "" {
		w, ok := morrigan.WorkloadByName(smt)
		if !ok {
			fatal("unknown SMT workload %q", smt)
		}
		smtSpecs = []morrigan.Workload{w}
	}
	label := func(name string) string {
		if smt != "" {
			return name + "+" + smt
		}
		return name
	}
	if traceFile != "" {
		return []morrigan.CampaignJob{{
			Workload: label(traceFile),
			Machine:  spec,
			Warmup:   warmup, Measure: measure,
			NewThreads: func() []morrigan.ThreadSpec {
				f, err := os.Open(traceFile)
				if err != nil {
					fatal("%v", err)
				}
				r, err := morrigan.NewTraceFileReader(f)
				if err != nil {
					fatal("%v", err)
				}
				out := []morrigan.ThreadSpec{{Reader: r}}
				for i, w := range smtSpecs {
					out = append(out, morrigan.ThreadSpec{Reader: w.NewReader(), VAOffset: morrigan.SMTVAOffset * morrigan.VAddr(i+1)})
				}
				return out
			},
		}}
	}
	var jobs []morrigan.CampaignJob
	for _, name := range strings.Split(workload, ",") {
		name = strings.TrimSpace(name)
		w, ok := morrigan.WorkloadByName(name)
		if !ok {
			fatal("unknown workload %q (use -list)", name)
		}
		jobs = append(jobs, morrigan.CampaignJob{
			Workload:  label(name),
			Machine:   spec,
			Workloads: append([]morrigan.Workload{w}, smtSpecs...),
			Warmup:    warmup, Measure: measure,
		})
	}
	return jobs
}

func printStats(label, pf string, st morrigan.Stats) {
	fmt.Printf("workload        %s\n", label)
	fmt.Printf("prefetcher      %s\n", pf)
	fmt.Printf("instructions    %d\n", st.Instructions)
	fmt.Printf("cycles          %d\n", st.Cycles)
	fmt.Printf("IPC             %.3f\n", st.IPC)
	fmt.Printf("L1I MPKI        %.3f\n", st.L1IMPKI)
	fmt.Printf("I-TLB MPKI      %.3f\n", st.ITLBMPKI)
	fmt.Printf("iSTLB MPKI      %.3f\n", st.ISTLBMPKI)
	fmt.Printf("dSTLB MPKI      %.3f\n", st.DSTLBMPKI)
	fmt.Printf("translation %%   %.2f%%\n", st.TranslationCyclePct)
	fmt.Printf("iSTLB misses    %d (PB hits %d)\n", st.ISTLBMisses, st.PBHits)
	fmt.Printf("demand iWalks   %d (refs %d, avg lat %.1f)\n", st.DemandIWalks, st.DemandIWalkRefs, st.AvgIWalkLatency)
	fmt.Printf("demand dWalks   %d (refs %d, avg lat %.1f)\n", st.DemandDWalks, st.DemandDWalkRefs, st.AvgDWalkLatency)
	fmt.Printf("prefetch walks  %d (refs %d, dropped %d)\n", st.PrefetchWalks, st.PrefetchRefs, st.DroppedWalks)
	fmt.Printf("refs per walk   %.2f\n", st.RefsPerWalk)
	fmt.Printf("PSC hit rate    %.3f\n", st.PSCHitRate)
	if st.PrefetchesIssued > 0 {
		fmt.Printf("prefetches      %d issued, %d discarded, %d free PTEs\n",
			st.PrefetchesIssued, st.PrefetchesDiscarded, st.FreePTEsInstalled)
	}
	if st.IRIPHits+st.SDPHits > 0 {
		fmt.Printf("module hits     IRIP %d, SDP %d\n", st.IRIPHits, st.SDPHits)
	}
	if st.ICacheXPagePrefetches > 0 {
		fmt.Printf("icache x-page   %d prefetches, %d walks, %d PB hits\n",
			st.ICacheXPagePrefetches, st.ICacheXPageWalks, st.ICachePBHits)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "morrigansim: "+format+"\n", args...)
	os.Exit(1)
}

// serveJobsDaemon turns morrigansim into the simulation-as-a-service daemon:
// a single-tenant job API (token auth, queue, quotas, result-store reuse)
// sharing one listener with the observability surface. SIGTERM/SIGINT drains
// the in-flight campaign and exits 0. For multi-tenant deployments use
// cmd/service, which adds a tenants file and fabric delegation flags.
func serveJobsDaemon(addr, token, results, corpus, fabricAddr string, jobs int, corpusMB int64) {
	obsSrv := morrigan.NewObservabilityServer()
	opt := morrigan.JobServiceOptions{
		Tenants:  []morrigan.ServiceTenant{{Name: "default", Token: token, MaxQueuedJobs: 4096}},
		Workers:  jobs,
		Cache:    morrigan.NewCampaignResultCache(),
		Observer: obsSrv,
		Log:      os.Stderr,
	}
	if results != "" {
		rs, err := morrigan.OpenResultStore(results)
		if err != nil {
			fatal("results: %v", err)
		}
		if rs.Len() > 0 {
			fmt.Fprintf(os.Stderr, "morrigansim: result store holds %d reusable results\n", rs.Len())
		}
		opt.Store = rs
	}
	var cs *morrigan.CorpusStore
	if corpus != "" {
		var err error
		cs, err = morrigan.OpenCorpusStore(morrigan.CorpusOptions{Dir: corpus, CacheBytes: corpusMB << 20})
		if err != nil {
			fatal("%v", err)
		}
		defer cs.Close()
		opt.NewReader = func(w morrigan.Workload) (morrigan.TraceReader, error) {
			c, err := cs.Materialize(w, 0)
			if err != nil {
				return nil, fmt.Errorf("corpus %s: %w", w.Name, err)
			}
			return c.NewReader(), nil
		}
	}
	var coord *morrigan.FabricCoordinator
	if fabricAddr != "" {
		coord = morrigan.NewFabricCoordinator(morrigan.FabricCoordinatorOptions{Corpus: cs, Log: os.Stderr})
		baddr, err := coord.Start(fabricAddr)
		if err != nil {
			fatal("fabric: %v", err)
		}
		fmt.Fprintf(os.Stderr, "morrigansim: fabric coordinator on http://%s\n", baddr)
		opt.Remote = coord
		obsSrv.AddGaugeSource(coord.Gauges)
	}

	svc, err := morrigan.NewJobService(opt)
	if err != nil {
		fatal("%v", err)
	}
	obsSrv.AddGaugeSource(svc.Gauges)

	mux := http.NewServeMux()
	mux.Handle("/api/v1/", svc.Handler())
	mux.Handle("/", obsSrv.Handler())
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("%v", err)
	}
	srv := &http.Server{Handler: mux}
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = srv.Serve(lis)
	}()
	fmt.Fprintf(os.Stderr, "morrigansim: job API on http://%s/api/v1/campaigns (tenant 'default')\n", lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Fprintln(os.Stderr, "morrigansim: draining (admission closed)")
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "morrigansim: %v\n", err)
	}
	if coord != nil {
		if err := coord.Drain(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "morrigansim: %v\n", err)
		}
		coord.Close()
	}
	svc.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	_ = srv.Shutdown(sctx)
	<-served
	_ = obsSrv.Close()
	fmt.Fprintln(os.Stderr, "morrigansim: drained; exiting")
}
