// Command experiments regenerates the paper's tables and figures on the
// synthetic workload suite.
//
// Examples:
//
//	experiments -exp all                 # everything, default scale
//	experiments -exp fig15 -v            # one figure with progress output
//	experiments -exp fig9,fig15 -quick   # reduced scale
//	experiments -exp all -full -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"morrigan"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment IDs, or 'all' (see -list)")
		quick   = flag.Bool("quick", false, "reduced scale (benchmark-sized)")
		full    = flag.Bool("full", false, "paper-scale methodology (slow)")
		warmup  = flag.Uint64("warmup", 0, "override warmup instructions per run")
		measure = flag.Uint64("measure", 0, "override measured instructions per run")
		out     = flag.String("out", "", "write results to a file instead of stdout")
		verbose = flag.Bool("v", false, "print per-simulation progress")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range morrigan.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	opt := morrigan.DefaultExperimentOptions()
	if *quick {
		opt = morrigan.QuickExperimentOptions()
	}
	if *full {
		opt = morrigan.FullExperimentOptions()
	}
	if *warmup > 0 {
		opt.Warmup = *warmup
	}
	if *measure > 0 {
		opt.Measure = *measure
	}
	if *verbose {
		opt.Progress = os.Stderr
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}

	ids := morrigan.ExperimentIDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	fmt.Fprintf(w, "Morrigan reproduction experiments (warmup %d, measure %d instructions per run)\n\n",
		opt.Warmup, opt.Measure)
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tab, err := morrigan.RunExperiment(id, opt)
		if err != nil {
			fatal("%s: %v", id, err)
		}
		tab.Render(w)
		fmt.Fprintf(os.Stderr, "%s finished in %s\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
