// Command experiments regenerates the paper's tables and figures on the
// synthetic workload suite.
//
// Examples:
//
//	experiments -exp all                 # everything, default scale
//	experiments -exp fig15 -v            # one figure with progress output
//	experiments -exp fig9,fig15 -quick   # reduced scale
//	experiments -exp all -full -out results.txt
//	experiments -exp all -quick -jobs 8  # fan out over 8 workers
//	experiments -exp fig15 -json results.json -csv results.csv
//	experiments -exp fig9,fig15 -corpus corpus/  # share materialised traces across configs
//	experiments -exp all -journal run.journal    # checkpoint every completed simulation
//	experiments -exp all -journal run.journal -resume  # skip already-journaled jobs
//	experiments -exp all -results results/       # reuse stored results across runs
//	experiments -exp all -fabric :9090           # delegate jobs to fabric workers
//	experiments -exp fig15 -dry-run              # print enumerated jobs, simulate nothing
//	experiments -exp fig15 -sample -corpus corpus/  # sampled mode: timed slices + 95% CIs
//	experiments -exp fig15 -trace-out trace.json # Perfetto-loadable lifecycle trace
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"morrigan"
	"morrigan/internal/profile"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment IDs, or 'all' (see -list)")
		quick     = flag.Bool("quick", false, "reduced scale (benchmark-sized)")
		full      = flag.Bool("full", false, "paper-scale methodology (slow)")
		warmup    = flag.Uint64("warmup", 0, "override warmup instructions per run")
		measure   = flag.Uint64("measure", 0, "override measured instructions per run")
		jobs      = flag.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		out       = flag.String("out", "", "write results to a file instead of stdout")
		jsonOut   = flag.String("json", "", "write per-simulation results as JSON to a file ('-' for stdout)")
		csvOut    = flag.String("csv", "", "write per-simulation results as CSV to a file ('-' for stdout)")
		telem     = flag.String("telemetry", "", "write per-simulation telemetry JSONL files into this directory")
		serve     = flag.String("serve", "", "serve live observability HTTP on this address (e.g. :8080): /metrics, /campaign, /events, /healthz, /debug/pprof")
		benchOut  = flag.String("bench", "", "write a BENCH_*.json throughput summary to this file ('-' for stdout)")
		corpus    = flag.String("corpus", "", "feed workloads from materialised trace corpora in this directory (built on first use)")
		corpusMB  = flag.Int64("corpus-cache-mb", 0, "decoded-chunk cache budget in MiB shared by all jobs (0 = default 512)")
		journal   = flag.String("journal", "", "checkpoint completed simulations to this journal file")
		resume    = flag.Bool("resume", false, "serve already-journaled results from -journal instead of re-simulating")
		results   = flag.String("results", "", "durable result store directory: reuse stored results across runs and persist new ones")
		fabric    = flag.String("fabric", "", "serve a distributed-campaign coordinator on this address (e.g. :9090) and delegate jobs to fabric workers")
		traceOut  = flag.String("trace-out", "", "write a distributed trace of every job's lifecycle phases to this file (.jsonl for JSONL, otherwise Chrome trace-event JSON for Perfetto)")
		sample    = flag.Bool("sample", false, "representative-interval sampling for eligible jobs: time only clustered representative slices and report extrapolated stats with 95% CIs")
		sampleInt = flag.Uint64("sample-interval", 0, "sampling interval length in instructions (0 = default 100000; measure must be a multiple)")
		sampleK   = flag.Int("sample-clusters", 0, "sampling cluster count / representative slices per run (0 = default 8)")
		sampleWu  = flag.Int64("sample-warmup", -1, "timed slice warmup instructions before each representative (-1 = default 25000, 0 = none)")
		dryRun    = flag.Bool("dry-run", false, "print enumerated jobs (key, machine and workload hashes, scale) without simulating")
		verbose   = flag.Bool("v", false, "print per-simulation progress with ETA")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file when the sweep completes")
	)
	flag.Parse()

	if *list {
		for _, id := range morrigan.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	stopProf, profErr := profile.Start(*cpuProf, *memProf)
	if profErr != nil {
		fatal("%v", profErr)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opt := morrigan.DefaultExperimentOptions()
	if *quick {
		opt = morrigan.QuickExperimentOptions()
	}
	if *full {
		opt = morrigan.FullExperimentOptions()
	}
	if *warmup > 0 {
		opt.Warmup = *warmup
	}
	if *measure > 0 {
		opt.Measure = *measure
	}
	opt.Jobs = *jobs
	opt.Context = ctx
	if *verbose {
		opt.Progress = os.Stderr
	}
	var rec *morrigan.CampaignRecorder
	if *jsonOut != "" || *csvOut != "" || *benchOut != "" {
		rec = &morrigan.CampaignRecorder{}
		opt.Record = rec
	}
	var tracer *morrigan.TraceRecorder
	if *traceOut != "" {
		tracer = morrigan.NewTraceRecorder("")
		opt.Spans = tracer
	}
	if *telem != "" {
		opt.Telemetry = &morrigan.CampaignTelemetry{Dir: *telem}
	}
	var store *morrigan.CorpusStore
	if *corpus != "" {
		var err error
		store, err = morrigan.OpenCorpusStore(morrigan.CorpusOptions{
			Dir:        *corpus,
			CacheBytes: *corpusMB << 20,
		})
		if err != nil {
			fatal("%v", err)
		}
		defer store.Close()
		opt.Corpus = store
	}
	var profiles *morrigan.SamplingProfileStore
	if *sample {
		p := morrigan.DefaultSamplingPolicy()
		if *sampleInt != 0 {
			p.Interval = *sampleInt
		}
		if *sampleK != 0 {
			p.Clusters = *sampleK
		}
		if *sampleWu >= 0 {
			p.SliceWarmup = uint64(*sampleWu)
		}
		if err := p.Validate(opt.Measure); err != nil {
			fatal("%v", err)
		}
		opt.Sampling = &p
		if *corpus != "" {
			// Profile artifacts live beside the trace corpus so repeated
			// sampled sweeps skip the functional profiling pass.
			var err error
			profiles, err = morrigan.OpenSamplingProfileStore(filepath.Join(*corpus, "profiles"))
			if err != nil {
				fatal("profiles: %v", err)
			}
			opt.Profiles = profiles
		}
	}
	// One result cache for the whole sweep: experiments share baseline
	// (machine, workload, scale) triples, so each distinct triple simulates
	// exactly once and every later occurrence is served from the cache.
	// Rendered tables are unaffected — cached stats are the original run's,
	// bit for bit. The dedup count surfaces as reused_jobs in -bench output.
	opt.Cache = morrigan.NewCampaignResultCache()
	if *journal != "" {
		jn, err := morrigan.OpenCampaignJournal(*journal, *resume)
		if err != nil {
			fatal("journal: %v", err)
		}
		defer jn.Close()
		if *resume && jn.Len() > 0 {
			fmt.Fprintf(os.Stderr, "experiments: resuming with %d journaled results\n", jn.Len())
		}
		opt.Journal = jn
	} else if *resume {
		fatal("-resume requires -journal")
	}
	if *results != "" {
		rs, err := morrigan.OpenResultStore(*results)
		if err != nil {
			fatal("results: %v", err)
		}
		if rs.Len() > 0 || rs.Skipped() > 0 {
			fmt.Fprintf(os.Stderr, "experiments: result store holds %d reusable results (%d unverifiable skipped)\n",
				rs.Len(), rs.Skipped())
		}
		opt.Store = rs
	}
	var srv *morrigan.ObservabilityServer
	if *serve != "" {
		srv = morrigan.NewObservabilityServer()
		addr, err := srv.Start(*serve)
		if err != nil {
			fatal("serve: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "experiments: observability on http://%s/metrics\n", addr)
		opt.Observer = srv
		if opt.Journal != nil {
			srv.AddReadiness("journal", opt.Journal.Writable)
		}
		if *sample {
			srv.AddGaugeSource(morrigan.SamplingGauges(profiles))
		}
	}
	if *fabric != "" {
		coord := morrigan.NewFabricCoordinator(morrigan.FabricCoordinatorOptions{
			Corpus: store,
			Log:    os.Stderr,
			Spans:  tracer,
		})
		addr, err := coord.Start(*fabric)
		if err != nil {
			fatal("fabric: %v", err)
		}
		defer coord.Close()
		fmt.Fprintf(os.Stderr, "experiments: fabric coordinator on http://%s/fabric/status — start workers with: fabric work -coordinator http://%s\n", addr, addr)
		opt.Remote = coord
		if srv != nil {
			srv.AddGaugeSource(coord.Gauges)
		}
	}
	if *dryRun {
		opt.DryRun = os.Stdout
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}

	ids := morrigan.ExperimentIDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	if !*dryRun {
		fmt.Fprintf(w, "Morrigan reproduction experiments (warmup %d, measure %d instructions per run)\n\n",
			opt.Warmup, opt.Measure)
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tab, err := morrigan.RunExperiment(id, opt)
		if err != nil {
			emitRecords(rec, *jsonOut, *csvOut, *benchOut, store, tracer)
			writeTrace(*traceOut, tracer)
			fatal("%s: %v", id, err)
		}
		if *dryRun {
			continue // jobs were printed as they were enumerated; tables are all zeros
		}
		tab.Render(w)
		fmt.Fprintf(os.Stderr, "%s finished in %s\n", id, time.Since(start).Round(time.Millisecond))
	}
	emitRecords(rec, *jsonOut, *csvOut, *benchOut, store, tracer)
	writeTrace(*traceOut, tracer)
}

// writeTrace exports the collected spans to path; a nil tracer is a no-op.
func writeTrace(path string, tracer *morrigan.TraceRecorder) {
	if tracer == nil {
		return
	}
	if err := morrigan.WriteTraceFile(path, tracer.Spans()); err != nil {
		fatal("trace-out: %v", err)
	}
	fmt.Fprintf(os.Stderr, "experiments: wrote %d trace spans to %s\n", tracer.Len(), path)
}

// emitRecords writes whatever the recorder has collected so far; on a partial
// (failed or interrupted) campaign that is every completed simulation.
func emitRecords(rec *morrigan.CampaignRecorder, jsonOut, csvOut, benchOut string, store *morrigan.CorpusStore, tracer *morrigan.TraceRecorder) {
	if rec == nil {
		return
	}
	c := rec.Campaign()
	write := func(path string, emit func(io.Writer) error) {
		if path == "" {
			return
		}
		var w io.Writer = os.Stdout
		if path != "-" {
			f, err := os.Create(path)
			if err != nil {
				fatal("%v", err)
			}
			defer f.Close()
			w = f
		}
		if err := emit(w); err != nil {
			fatal("%v", err)
		}
	}
	write(jsonOut, c.WriteJSON)
	write(csvOut, c.WriteCSV)
	if benchOut != "" {
		b := morrigan.NewCampaignBench(c)
		if tracer != nil {
			b.Phases = morrigan.TraceBreakdown(tracer.Spans())
		}
		if store != nil {
			cs := store.CacheStats()
			b.TraceSupply = &morrigan.CampaignTraceSupply{
				CorpusDir:      store.Dir(),
				CacheGets:      cs.Gets,
				CacheHits:      cs.Hits,
				CacheDecodes:   cs.Decodes,
				CacheEvictions: cs.Evictions,
				ResidentBytes:  cs.ResidentBytes,
			}
		}
		write(benchOut, b.WriteJSON)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
