// Command tracegen materialises a synthetic workload into a trace file that
// morrigansim (and any trace.Reader consumer) can replay.
//
// Example:
//
//	tracegen -workload qmm-srv-07 -n 10000000 -o srv07.mgt.gz -compress
package main

import (
	"flag"
	"fmt"
	"os"

	"morrigan"
)

func main() {
	var (
		workload = flag.String("workload", "qmm-srv-01", "built-in workload name")
		params   = flag.String("params", "", "JSON file defining a custom workload (overrides -workload)")
		n        = flag.Uint64("n", 10_000_000, "instructions to emit")
		out      = flag.String("o", "", "output file (required)")
		compress = flag.Bool("compress", false, "gzip the trace")
	)
	flag.Parse()
	if *out == "" {
		fatal("missing -o output file")
	}
	var w morrigan.Workload
	if *params != "" {
		pf, err := os.Open(*params)
		if err != nil {
			fatal("%v", err)
		}
		w, err = morrigan.LoadWorkloadSpec(pf)
		pf.Close()
		if err != nil {
			fatal("%v", err)
		}
	} else {
		var ok bool
		w, ok = morrigan.WorkloadByName(*workload)
		if !ok {
			fatal("unknown workload %q", *workload)
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	tw, err := morrigan.NewTraceWriter(f, *compress)
	if err != nil {
		fatal("%v", err)
	}
	gen := w.NewReader()
	var rec morrigan.TraceRecord
	for i := uint64(0); i < *n; i++ {
		if err := gen.Next(&rec); err != nil {
			fatal("generating: %v", err)
		}
		if err := tw.Write(&rec); err != nil {
			fatal("writing: %v", err)
		}
	}
	if err := tw.Close(); err != nil {
		fatal("%v", err)
	}
	info, err := f.Stat()
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("wrote %d instructions of %s to %s (%.1f MB, %.2f bytes/instr)\n",
		*n, w.Name, *out, float64(info.Size())/1e6, float64(info.Size())/float64(*n))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
