// Command tracegen materialises a synthetic workload into a replayable
// artifact: either a flat trace file (-o) that morrigansim and any
// trace.Reader consumer can execute, or a chunked corpus container inside a
// corpus store directory (-corpus) that simulations stream with parallel
// decode and cross-job chunk sharing.
//
// Examples:
//
//	tracegen -workload qmm-srv-07 -n 10000000 -o srv07.mgt.gz -compress
//	tracegen -workload qmm-srv-07 -n 10000000 -corpus corpus/
//	tracegen -workload qmm-srv-01 -n 2000000 -corpus corpus/ -bench BENCH_trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"morrigan"
)

func main() {
	var (
		workload  = flag.String("workload", "qmm-srv-01", "built-in workload name")
		params    = flag.String("params", "", "JSON file defining a custom workload (overrides -workload)")
		n         = flag.Uint64("n", 10_000_000, "instructions to emit")
		out       = flag.String("o", "", "output trace file (this or -corpus is required)")
		compress  = flag.Bool("compress", false, "gzip the trace (-o mode)")
		corpusDir = flag.String("corpus", "", "materialise into a corpus store directory instead of a flat trace file")
		chunkRecs = flag.Int("chunk-records", 0, "records per corpus chunk (0 = default 65536)")
		workers   = flag.Int("workers", 0, "parallel chunk encoders for corpus builds (0 = GOMAXPROCS)")
		benchOut  = flag.String("bench", "", "measure generator-vs-corpus read throughput and write a BENCH_*.json summary ('-' for stdout; requires -corpus)")
	)
	flag.Parse()
	if (*out == "") == (*corpusDir == "") {
		fatal("exactly one of -o and -corpus is required")
	}
	if *benchOut != "" && *corpusDir == "" {
		fatal("-bench requires -corpus")
	}
	var w morrigan.Workload
	if *params != "" {
		pf, err := os.Open(*params)
		if err != nil {
			fatal("%v", err)
		}
		w, err = morrigan.LoadWorkloadSpec(pf)
		pf.Close()
		if err != nil {
			fatal("%v", err)
		}
	} else {
		var ok bool
		w, ok = morrigan.WorkloadByName(*workload)
		if !ok {
			fatal("unknown workload %q", *workload)
		}
	}

	if *corpusDir != "" {
		buildCorpus(w, *n, *corpusDir, *chunkRecs, *workers, *benchOut)
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	tw, err := morrigan.NewTraceWriter(f, *compress)
	if err != nil {
		fatal("%v", err)
	}
	gen := w.NewReader()
	var rec morrigan.TraceRecord
	for i := uint64(0); i < *n; i++ {
		if err := gen.Next(&rec); err != nil {
			fatal("generating: %v", err)
		}
		if err := tw.Write(&rec); err != nil {
			fatal("writing: %v", err)
		}
	}
	if err := tw.Close(); err != nil {
		fatal("%v", err)
	}
	info, err := f.Stat()
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("wrote %d instructions of %s to %s (%.1f MB, %.2f bytes/instr)\n",
		*n, w.Name, *out, float64(info.Size())/1e6, float64(info.Size())/float64(*n))
}

// buildCorpus materialises the workload into a corpus store and optionally
// benchmarks reading it back against live generation.
func buildCorpus(w morrigan.Workload, n uint64, dir string, chunkRecs, workers int, benchOut string) {
	store, err := morrigan.OpenCorpusStore(morrigan.CorpusOptions{
		Dir:          dir,
		ChunkRecords: chunkRecs,
		BuildWorkers: workers,
	})
	if err != nil {
		fatal("%v", err)
	}
	defer store.Close()
	start := time.Now()
	c, err := store.Materialize(w, n)
	if err != nil {
		fatal("%v", err)
	}
	elapsed := time.Since(start)
	entry, ok := store.Manifest().Entries[w.Hash()]
	if !ok {
		fatal("corpus for %s missing from manifest after build", w.Name)
	}
	size := int64(0)
	if fi, err := os.Stat(filepath.Join(dir, entry.File)); err == nil {
		size = fi.Size()
	}
	fmt.Printf("materialised %d instructions of %s into %s (%d chunks of %d, %.1f MB, %.2f bytes/instr, %s)\n",
		c.Records(), w.Name, filepath.Join(dir, entry.File), c.Chunks(), c.ChunkRecords(),
		float64(size)/1e6, float64(size)/float64(c.Records()), elapsed.Round(time.Millisecond))

	if benchOut != "" {
		writeBench(benchOut, w, c, store)
	}
}

// writeBench times four full passes over the corpus's record stream — the
// live generator, a cold corpus read that pays the one-time chunk decode,
// then the corpus reader record-at-a-time and in batches against the now
// resident cache — and emits a BENCH_*.json summary whose per-entry rate is
// records (instructions) per second. The warm corpus entries are the
// artifact's headline: they are the regime campaign jobs run in, where the
// shared chunk cache has amortised decoding across jobs, and they must beat
// regenerating the trace live. The cold entry records what the first reader
// of each chunk pays.
func writeBench(path string, w morrigan.Workload, c *morrigan.Corpus, store *morrigan.CorpusStore) {
	records := c.Records()
	b := morrigan.CampaignBench{
		Schema:     morrigan.CampaignBenchSchemaVersion,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	add := func(key string, pass func() error) {
		start := time.Now()
		if err := pass(); err != nil {
			fatal("bench %s: %v", key, err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		e := morrigan.CampaignBenchEntry{
			Key:          key,
			Instructions: records,
			ElapsedMS:    ms,
		}
		if ms > 0 {
			e.InstrPerSec = float64(records) / (ms / 1000)
		}
		b.Jobs++
		b.TotalInstructions += records
		b.TotalElapsedMS += ms
		b.Entries = append(b.Entries, e)
	}
	var rec morrigan.TraceRecord
	add("trace/generator/"+w.Name, func() error {
		r := morrigan.LimitTrace(w.NewReader(), records)
		for {
			if err := r.Next(&rec); err == io.EOF {
				return nil
			} else if err != nil {
				return err
			}
		}
	})
	drainBatches := func() error {
		r := c.NewReader()
		defer r.Close()
		buf := make([]morrigan.TraceRecord, 4096)
		for {
			if _, err := r.NextBatch(buf); err == io.EOF {
				return nil
			} else if err != nil {
				return err
			}
		}
	}
	add("trace/corpus-cold/"+w.Name, drainBatches)
	add("trace/corpus/"+w.Name, func() error {
		r := c.NewReader()
		defer r.Close()
		for {
			if err := r.Next(&rec); err == io.EOF {
				return nil
			} else if err != nil {
				return err
			}
		}
	})
	add("trace/corpus-batch/"+w.Name, drainBatches)
	if b.TotalElapsedMS > 0 {
		b.InstrPerSec = float64(b.TotalInstructions) / (b.TotalElapsedMS / 1000)
	}
	cs := store.CacheStats()
	b.TraceSupply = &morrigan.CampaignTraceSupply{
		CorpusDir:      store.Dir(),
		CacheGets:      cs.Gets,
		CacheHits:      cs.Hits,
		CacheDecodes:   cs.Decodes,
		CacheEvictions: cs.Evictions,
		ResidentBytes:  cs.ResidentBytes,
	}
	var out io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		out = f
	}
	if err := b.WriteJSON(out); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
