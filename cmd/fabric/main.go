// Command fabric runs the distributed campaign fabric: a coordinator that
// enumerates experiment campaigns and hands jobs to workers over HTTP, and
// the stateless workers that pull, simulate, and submit.
//
// A distributed run is one `fabric serve` (or any experiments/morrigansim
// invocation with -fabric) plus any number of `fabric work` processes — on
// the same machine or across machines sharing nothing but the coordinator
// URL. Merged campaign output is byte-identical to a single-process run at
// any worker count, and a worker killed mid-campaign costs only a lease
// timeout before its job is reassigned.
//
// Examples:
//
//	fabric serve -addr :9090 -exp fig9,fig15 -quick -out results.txt
//	fabric serve -addr :9090 -exp all -results results/ -corpus corpus/
//	fabric serve -addr :9090 -exp fig15 -quick -trace-out trace.json
//	fabric work -coordinator http://127.0.0.1:9090
//	fabric work -coordinator http://bighost:9090 -corpus worker-corpus/ -name w1
//	fabric work -coordinator http://bighost:9090 -trace-out worker-trace.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"morrigan"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "work":
		work(os.Args[2:])
	case "gc":
		gc(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  fabric serve [flags]   run a coordinator driving an experiment campaign
  fabric work  [flags]   run a worker pulling jobs from a coordinator
  fabric gc    [flags]   compact a result store (drop records older stats schemas wrote)

run 'fabric serve -h', 'fabric work -h' or 'fabric gc -h' for flags`)
	os.Exit(2)
}

// serve drives an experiment campaign through an embedded coordinator: every
// keyed job is delegated to fabric workers; the process itself simulates
// nothing (beyond unkeyed instrumented jobs, which cannot cross the wire).
func serve(args []string) {
	fs := flag.NewFlagSet("fabric serve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":9090", "coordinator listen address")
		exp      = fs.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		quick    = fs.Bool("quick", false, "reduced scale (benchmark-sized)")
		full     = fs.Bool("full", false, "paper-scale methodology (slow)")
		warmup   = fs.Uint64("warmup", 0, "override warmup instructions per run")
		measure  = fs.Uint64("measure", 0, "override measured instructions per run")
		jobs     = fs.Int("jobs", 0, "concurrent job delegations (0 = GOMAXPROCS)")
		out      = fs.String("out", "", "write rendered tables to a file instead of stdout")
		jsonOut  = fs.String("json", "", "write per-simulation results as JSON to a file ('-' for stdout)")
		results  = fs.String("results", "", "durable result store directory: reuse stored results across runs and persist new ones")
		corpus   = fs.String("corpus", "", "trace corpus directory; also served to workers over /fabric/corpus")
		leaseTTL = fs.Duration("lease-ttl", 0, "worker lease TTL before a silent worker's job is reassigned (0 = 30s)")
		traceOut = fs.String("trace-out", "", "write the assembled campaign trace (coordinator + worker spans) to this file (.jsonl for JSONL, otherwise Chrome trace-event JSON)")
		verbose  = fs.Bool("v", false, "print per-job progress and fabric events")
	)
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := morrigan.DefaultExperimentOptions()
	if *quick {
		opt = morrigan.QuickExperimentOptions()
	}
	if *full {
		opt = morrigan.FullExperimentOptions()
	}
	if *warmup > 0 {
		opt.Warmup = *warmup
	}
	if *measure > 0 {
		opt.Measure = *measure
	}
	opt.Jobs = *jobs
	opt.Context = ctx
	opt.Cache = morrigan.NewCampaignResultCache()
	if *verbose {
		opt.Progress = os.Stderr
	}
	var rec *morrigan.CampaignRecorder
	if *jsonOut != "" {
		rec = &morrigan.CampaignRecorder{}
		opt.Record = rec
	}
	var tracer *morrigan.TraceRecorder
	if *traceOut != "" {
		tracer = morrigan.NewTraceRecorder("")
		opt.Spans = tracer
	}

	var cs *morrigan.CorpusStore
	if *corpus != "" {
		var err error
		cs, err = morrigan.OpenCorpusStore(morrigan.CorpusOptions{Dir: *corpus})
		if err != nil {
			fatal("%v", err)
		}
		defer cs.Close()
		opt.Corpus = cs
	}
	if *results != "" {
		rs, err := morrigan.OpenResultStore(*results)
		if err != nil {
			fatal("results: %v", err)
		}
		if rs.Len() > 0 {
			fmt.Fprintf(os.Stderr, "fabric: result store holds %d reusable results\n", rs.Len())
		}
		opt.Store = rs
	}

	copt := morrigan.FabricCoordinatorOptions{Corpus: cs, LeaseTTL: *leaseTTL, Spans: tracer}
	if *verbose {
		copt.Log = os.Stderr
	}
	coord := morrigan.NewFabricCoordinator(copt)
	bound, err := coord.Start(*addr)
	if err != nil {
		fatal("%v", err)
	}
	defer coord.Close()
	fmt.Fprintf(os.Stderr, "fabric: coordinator on http://%s — start workers with: fabric work -coordinator http://%s\n", bound, bound)
	opt.Remote = coord

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}

	ids := morrigan.ExperimentIDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	fmt.Fprintf(w, "Morrigan reproduction experiments (warmup %d, measure %d instructions per run)\n\n",
		opt.Warmup, opt.Measure)
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tab, err := morrigan.RunExperiment(id, opt)
		if err != nil {
			if ctx.Err() != nil {
				// Interrupted, not failed: stop leasing, let outstanding
				// worker leases resolve, flush everything collected so far,
				// and exit clean so supervisors don't see a crash.
				stop()
				fmt.Fprintln(os.Stderr, "fabric: interrupted; draining outstanding leases")
				dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				if derr := coord.Drain(dctx); derr != nil {
					fmt.Fprintf(os.Stderr, "fabric: %v\n", derr)
				}
				cancel()
				emitJSON(rec, *jsonOut)
				writeTrace(*traceOut, tracer)
				fmt.Fprintln(os.Stderr, "fabric: drained; exiting")
				return
			}
			emitJSON(rec, *jsonOut)
			writeTrace(*traceOut, tracer)
			fatal("%s: %v", id, err)
		}
		tab.Render(w)
		fmt.Fprintf(os.Stderr, "%s finished in %s\n", id, time.Since(start).Round(time.Millisecond))
	}
	emitJSON(rec, *jsonOut)
	writeTrace(*traceOut, tracer)
}

// work runs one worker until interrupted or until the coordinator goes away.
func work(args []string) {
	fs := flag.NewFlagSet("fabric work", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL (e.g. http://127.0.0.1:9090); required")
		name        = fs.String("name", "", "worker name in coordinator logs (default host:pid)")
		corpus      = fs.String("corpus", "", "local trace corpus directory; misses are fetched from the coordinator")
		traceOut    = fs.String("trace-out", "", "write this worker's own job spans to this file on exit (.jsonl for JSONL, otherwise Chrome trace-event JSON)")
		quiet       = fs.Bool("q", false, "suppress per-job log lines")
	)
	fs.Parse(args)
	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "fabric work: -coordinator is required")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	wopt := morrigan.FabricWorkerOptions{Coordinator: *coordinator, Name: *name}
	if wopt.Name == "" {
		host, _ := os.Hostname()
		wopt.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if !*quiet {
		wopt.Log = os.Stderr
	}
	if *corpus != "" {
		cs, err := morrigan.OpenCorpusStore(morrigan.CorpusOptions{Dir: *corpus})
		if err != nil {
			fatal("%v", err)
		}
		defer cs.Close()
		wopt.Corpus = cs
	}
	var tracer *morrigan.TraceRecorder
	if *traceOut != "" {
		tracer = morrigan.NewTraceRecorder(wopt.Name)
		wopt.Spans = tracer
	}
	worker, err := morrigan.NewFabricWorker(wopt)
	if err != nil {
		fatal("%v", err)
	}
	if err := worker.Run(ctx); err != nil {
		fatal("%v", err)
	}
	writeTrace(*traceOut, tracer)
	fmt.Fprintf(os.Stderr, "fabric: %s exiting after %d jobs\n", wopt.Name, worker.JobsRun())
}

// gc compacts a result store: records whose stats were written by an older
// (now unreadable) schema can never be reused and only cost disk and scan
// time. -dry-run reports what would go without removing anything.
func gc(args []string) {
	fs := flag.NewFlagSet("fabric gc", flag.ExitOnError)
	var (
		results = fs.String("results", "", "result store directory to compact; required")
		dryRun  = fs.Bool("dry-run", false, "report reclaimable records without removing them")
	)
	fs.Parse(args)
	if *results == "" {
		fmt.Fprintln(os.Stderr, "fabric gc: -results is required")
		os.Exit(2)
	}
	rs, err := morrigan.OpenResultStore(*results)
	if err != nil {
		fatal("results: %v", err)
	}
	if *dryRun {
		paths, err := rs.Reclaimable()
		if err != nil {
			fatal("gc: %v", err)
		}
		for _, p := range paths {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "fabric gc: %d of %d records reclaimable (dry run; nothing removed)\n",
			len(paths), rs.Len()+len(paths))
		return
	}
	removed, err := rs.Compact()
	if err != nil {
		fatal("gc: %v", err)
	}
	fmt.Fprintf(os.Stderr, "fabric gc: removed %d stale records; %d reusable results remain\n", removed, rs.Len())
}

// writeTrace exports collected spans to path; a nil tracer is a no-op.
func writeTrace(path string, tracer *morrigan.TraceRecorder) {
	if tracer == nil {
		return
	}
	if err := morrigan.WriteTraceFile(path, tracer.Spans()); err != nil {
		fatal("trace-out: %v", err)
	}
	fmt.Fprintf(os.Stderr, "fabric: wrote %d trace spans to %s\n", tracer.Len(), path)
}

// emitJSON writes whatever the recorder collected; on a failed campaign that
// is every completed simulation.
func emitJSON(rec *morrigan.CampaignRecorder, path string) {
	if rec == nil || path == "" {
		return
	}
	c := rec.Campaign()
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := c.WriteJSON(w); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fabric: "+format+"\n", args...)
	os.Exit(1)
}
