// Command service runs the simulation-as-a-service daemon: a multi-tenant
// HTTP job API over the campaign runner, sharing one listener with the
// observability surface (SSE progress, Prometheus metrics, health probes).
//
// Clients authenticate with per-tenant bearer tokens, POST campaign
// submissions, watch progress on /events, and fetch merged results; repeat
// submissions whose job keys the result store already holds simulate
// nothing. SIGTERM/SIGINT drains gracefully: admission closes, the in-flight
// campaign finishes, outstanding fabric leases resolve, then the process
// exits 0.
//
// Examples:
//
//	service -addr :8080 -token dev-token -results results/
//	service -addr :8080 -tenants tenants.json -results results/ -corpus corpus/
//	service -addr :8080 -token dev-token -fabric :9090 -results results/
//
// tenants.json is a JSON array of tenant declarations:
//
//	[{"name": "alice", "token": "s3cret", "max_queued_jobs": 64,
//	  "max_instructions": 100000000}]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"morrigan"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address for the job API and observability endpoints")
		tenants  = flag.String("tenants", "", "JSON file declaring tenants (array of {name, token, max_queued_jobs, max_instructions})")
		token    = flag.String("token", "", "convenience single-tenant mode: one tenant 'default' with this token and a 4096-job quota")
		results  = flag.String("results", "", "durable result store directory: repeat submissions are served without simulating")
		corpus   = flag.String("corpus", "", "trace corpus directory; feeds simulations from materialised containers")
		fabric   = flag.String("fabric", "", "serve a fabric coordinator on this address and delegate jobs to workers")
		jobs     = flag.Int("jobs", 0, "concurrent simulations per campaign (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "max queued campaigns across all tenants (0 = 64)")
		drainFor = flag.Duration("drain-timeout", 2*time.Minute, "how long a SIGTERM waits for the in-flight campaign before forcing exit")
		verbose  = flag.Bool("v", false, "log admissions and completions")
	)
	flag.Parse()

	tcs, err := loadTenants(*tenants, *token)
	if err != nil {
		fatal("%v", err)
	}

	obsSrv := morrigan.NewObservabilityServer()
	opt := morrigan.JobServiceOptions{
		Tenants:            tcs,
		MaxQueuedCampaigns: *queue,
		Workers:            *jobs,
		Cache:              morrigan.NewCampaignResultCache(),
		Observer:           obsSrv,
	}
	if *verbose {
		opt.Log = os.Stderr
	}
	if *results != "" {
		rs, err := morrigan.OpenResultStore(*results)
		if err != nil {
			fatal("results: %v", err)
		}
		if rs.Len() > 0 {
			fmt.Fprintf(os.Stderr, "service: result store holds %d reusable results\n", rs.Len())
		}
		opt.Store = rs
	}
	var cs *morrigan.CorpusStore
	if *corpus != "" {
		cs, err = morrigan.OpenCorpusStore(morrigan.CorpusOptions{Dir: *corpus})
		if err != nil {
			fatal("%v", err)
		}
		defer cs.Close()
		opt.NewReader = func(w morrigan.Workload) (morrigan.TraceReader, error) {
			c, err := cs.Materialize(w, 0)
			if err != nil {
				return nil, fmt.Errorf("corpus %s: %w", w.Name, err)
			}
			return c.NewReader(), nil
		}
	}
	var coord *morrigan.FabricCoordinator
	if *fabric != "" {
		copt := morrigan.FabricCoordinatorOptions{Corpus: cs}
		if *verbose {
			copt.Log = os.Stderr
		}
		coord = morrigan.NewFabricCoordinator(copt)
		baddr, err := coord.Start(*fabric)
		if err != nil {
			fatal("fabric: %v", err)
		}
		fmt.Fprintf(os.Stderr, "service: fabric coordinator on http://%s — start workers with: fabric work -coordinator http://%s\n", baddr, baddr)
		opt.Remote = coord
		obsSrv.AddGaugeSource(coord.Gauges)
	}

	svc, err := morrigan.NewJobService(opt)
	if err != nil {
		fatal("%v", err)
	}
	obsSrv.AddGaugeSource(svc.Gauges)

	mux := http.NewServeMux()
	mux.Handle("/api/v1/", svc.Handler())
	mux.Handle("/", obsSrv.Handler())
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("%v", err)
	}
	srv := &http.Server{Handler: mux}
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = srv.Serve(lis)
	}()
	fmt.Fprintf(os.Stderr, "service: job API on http://%s/api/v1/campaigns (%d tenants)\n", lis.Addr(), len(tcs))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills the process the default way

	// Graceful drain: close admission, let the in-flight campaign finish,
	// resolve outstanding fabric leases, then shut the listener down.
	fmt.Fprintln(os.Stderr, "service: draining (admission closed)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "service: %v\n", err)
	}
	if coord != nil {
		if err := coord.Drain(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "service: %v\n", err)
		}
		coord.Close()
	}
	svc.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	_ = srv.Shutdown(sctx)
	<-served
	_ = obsSrv.Close()
	fmt.Fprintln(os.Stderr, "service: drained; exiting")
}

// loadTenants resolves the tenant set from -tenants (a JSON file) or the
// -token convenience flag; exactly one must be given.
func loadTenants(path, token string) ([]morrigan.ServiceTenant, error) {
	switch {
	case path != "" && token != "":
		return nil, fmt.Errorf("-tenants and -token are mutually exclusive")
	case path != "":
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var tcs []morrigan.ServiceTenant
		if err := json.Unmarshal(raw, &tcs); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		return tcs, nil
	case token != "":
		return []morrigan.ServiceTenant{{Name: "default", Token: token, MaxQueuedJobs: 4096}}, nil
	default:
		return nil, fmt.Errorf("-tenants file or -token is required")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "service: "+format+"\n", args...)
	os.Exit(1)
}
