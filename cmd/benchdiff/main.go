// Command benchdiff compares two campaign result files (the versioned JSON
// written by morrigansim -results-json or cmd/experiments) and reports
// per-workload IPC, speedup and wall-clock deltas. It exits 1 when any
// workload's IPC regressed beyond the threshold (or, with -elapsed-threshold,
// its wall time grew beyond that gate), making performance a CI-checkable
// property:
//
//	benchdiff -threshold 2 results_old.json results_new.json
//
// Exit codes: 0 no regression, 1 regression detected, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"morrigan/internal/benchdiff"
	"morrigan/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: benchdiff [flags] old.json new.json\n\n")
		fs.PrintDefaults()
	}
	threshold := fs.Float64("threshold", 2.0,
		"flag a workload whose IPC dropped by more than this percent (0 disables)")
	elapsedThreshold := fs.Float64("elapsed-threshold", 0,
		"flag a workload whose wall time grew by more than this percent (0 disables; wall time is noisy)")
	minThroughput := fs.Float64("min-throughput-ratio", 0,
		"flag a workload whose simulation throughput (instr/sec) fell below this multiple of the old file's (0 disables; >1 demands a speedup)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	oldC, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	newC, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	rep := benchdiff.Compare(oldC, newC, benchdiff.Options{
		IPCThresholdPct:     *threshold,
		ElapsedThresholdPct: *elapsedThreshold,
		MinThroughputRatio:  *minThroughput,
	})
	if err := rep.Write(stdout); err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if rep.Regressed() {
		fmt.Fprintf(stderr, "benchdiff: %d workload(s) regressed beyond threshold\n", len(rep.Regressions()))
		return 1
	}
	return 0
}

// load opens and decodes one campaign file.
func load(path string) (runner.Campaign, error) {
	f, err := os.Open(path)
	if err != nil {
		return runner.Campaign{}, err
	}
	defer f.Close()
	return benchdiff.Load(f)
}
