package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"morrigan/internal/runner"
	"morrigan/internal/sim"
)

// writeCampaign writes a campaign file with one record per (workload, ipc).
func writeCampaign(t *testing.T, path string, ipcs map[string]float64) {
	t.Helper()
	c := runner.Campaign{Schema: runner.SchemaVersion}
	for wl, ipc := range ipcs {
		c.Records = append(c.Records, runner.Record{
			Experiment: "fig15",
			Config:     "Morrigan",
			Workload:   wl,
			ElapsedMS:  100,
			Stats:      &sim.Stats{IPC: ipc},
		})
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := c.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	samePath := filepath.Join(dir, "same.json")
	dropPath := filepath.Join(dir, "drop.json")
	boundaryPath := filepath.Join(dir, "boundary.json")
	badPath := filepath.Join(dir, "bad.json")
	writeCampaign(t, oldPath, map[string]float64{"a": 1.0})
	writeCampaign(t, samePath, map[string]float64{"a": 1.0})
	writeCampaign(t, dropPath, map[string]float64{"a": 0.9}) // -10%
	// Exactly at the threshold: 1 - 1/32 and 3.125% are both binary-exact,
	// so the delta lands precisely on the gate. The comparison is strict
	// (regressed only beyond the threshold), so this must pass.
	writeCampaign(t, boundaryPath, map[string]float64{"a": 0.96875})
	if err := os.WriteFile(badPath, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		code int
		want string // substring of stderr, empty = don't care
	}{
		{"no regression", []string{"-threshold", "2", oldPath, samePath}, 0, ""},
		{"regression", []string{"-threshold", "2", oldPath, dropPath}, 1, "regressed"},
		{"exactly at threshold", []string{"-threshold", "3.125", oldPath, boundaryPath}, 0, ""},
		{"zero threshold disables", []string{"-threshold", "0", oldPath, dropPath}, 0, ""},
		{"missing file", []string{oldPath, filepath.Join(dir, "nope.json")}, 2, "no such file"},
		{"malformed json", []string{oldPath, badPath}, 2, "benchdiff:"},
		{"missing args", []string{oldPath}, 2, "usage:"},
		{"bad flag", []string{"-threshold", "x", oldPath, samePath}, 2, ""},
	}
	for _, tc := range cases {
		var stdout, stderr strings.Builder
		if code := run(tc.args, &stdout, &stderr); code != tc.code {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, code, tc.code, stderr.String())
		}
		if tc.want != "" && !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%s: stderr %q missing %q", tc.name, stderr.String(), tc.want)
		}
	}
}
