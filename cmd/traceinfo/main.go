// Command traceinfo inspects trace artifacts:
//
//   - a flat trace file: instruction counts, memory operation mix, code/data
//     footprints and page-transition statistics;
//   - a corpus container (.mtc): geometry and a per-chunk table of record
//     counts and compressed/uncompressed sizes;
//   - a corpus store directory: the manifest of materialised workloads.
//
// -verify additionally checks corpus contents against the index: every
// chunk's frame checksum, record count and uncompressed length.
//
// Examples:
//
//	traceinfo srv07.mgt.gz
//	traceinfo corpus/qmm-srv-07-0a1b2c3d4e5f.mtc
//	traceinfo -verify corpus/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"morrigan"
	"morrigan/internal/arch"
	"morrigan/internal/stats"
)

func main() {
	verify := flag.Bool("verify", false, "verify corpus chunk checksums, record counts and lengths against the index")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo [-verify] <trace-file | corpus.mtc | corpus-dir>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	fi, err := os.Stat(path)
	if err != nil {
		fatal("%v", err)
	}
	switch {
	case fi.IsDir():
		storeInfo(path, *verify)
	case isCorpusContainer(path):
		corpusInfo(path, *verify)
	default:
		traceFileInfo(path)
	}
}

// isCorpusContainer sniffs the corpus container magic.
func isCorpusContainer(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false
	}
	return string(magic[:]) == "MTC1"
}

// storeInfo prints a corpus directory's manifest, optionally verifying every
// container it lists.
func storeInfo(dir string, verify bool) {
	m, err := morrigan.ReadCorpusManifest(dir)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("corpus store      %s (manifest schema %d, %d workloads)\n", dir, m.Schema, len(m.Entries))
	keys := make([]string, 0, len(m.Entries))
	for k := range m.Entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return m.Entries[keys[i]].Workload < m.Entries[keys[j]].Workload })
	failed := 0
	for _, k := range keys {
		e := m.Entries[k]
		size := int64(0)
		if fi, err := os.Stat(filepath.Join(dir, e.File)); err == nil {
			size = fi.Size()
		}
		fmt.Printf("  %-16s %12d records  chunk %6d  %8.1f MB  %s  hash %s\n",
			e.Workload, e.Records, e.ChunkRecords, float64(size)/1e6, e.File, k[:12])
		if verify {
			if err := verifyContainer(filepath.Join(dir, e.File), e.Records); err != nil {
				failed++
				fmt.Printf("    VERIFY FAILED: %v\n", err)
			}
		}
	}
	if verify {
		if failed > 0 {
			fatal("%d of %d containers failed verification", failed, len(keys))
		}
		fmt.Printf("verified %d containers: OK\n", len(keys))
	}
}

// verifyContainer opens one container and checks it chunk by chunk, plus its
// record count against the manifest's.
func verifyContainer(path string, wantRecords uint64) error {
	c, err := morrigan.OpenCorpusFile(path)
	if err != nil {
		return err
	}
	defer c.Close()
	if c.Records() != wantRecords {
		return fmt.Errorf("container holds %d records, manifest says %d", c.Records(), wantRecords)
	}
	return c.Verify()
}

// corpusInfo prints one container's geometry and per-chunk table.
func corpusInfo(path string, verify bool) {
	c, err := morrigan.OpenCorpusFile(path)
	if err != nil {
		fatal("%v", err)
	}
	defer c.Close()
	fmt.Printf("corpus container  %s\n", path)
	fmt.Printf("records           %d\n", c.Records())
	fmt.Printf("chunks            %d (%d records each)\n", c.Chunks(), c.ChunkRecords())
	var clen, ulen uint64
	for i := 0; i < c.Chunks(); i++ {
		ci := c.Chunk(i)
		clen += ci.CompressedLen
		ulen += ci.UncompressedLen
	}
	fmt.Printf("compressed        %.1f MB (%.1f MB encoded, ratio %.2fx, %.2f bytes/record)\n",
		float64(clen)/1e6, float64(ulen)/1e6, float64(ulen)/float64(clen), float64(clen)/float64(c.Records()))
	fmt.Printf("%6s %12s %12s %14s %12s\n", "chunk", "records", "compressed", "uncompressed", "offset")
	for i := 0; i < c.Chunks(); i++ {
		ci := c.Chunk(i)
		fmt.Printf("%6d %12d %12d %14d %12d\n", i, ci.Records, ci.CompressedLen, ci.UncompressedLen, ci.Offset)
	}
	if verify {
		if err := c.Verify(); err != nil {
			fatal("verify: %v", err)
		}
		fmt.Printf("verified %d chunks: OK\n", c.Chunks())
	}
}

// traceFileInfo prints the legacy flat-trace statistics.
func traceFileInfo(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	r, err := morrigan.NewTraceFileReader(f)
	if err != nil {
		fatal("%v", err)
	}

	var (
		rec         morrigan.TraceRecord
		n           uint64
		loads       uint64
		stores      uint64
		transitions uint64
		prevPage    arch.VPN
		codePages   = map[arch.VPN]bool{}
		dataPages   = map[arch.VPN]bool{}
		pageFreq    = stats.NewPageFrequency()
	)
	for {
		err := r.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal("reading record %d: %v", n, err)
		}
		vpn := rec.PC.Page()
		codePages[vpn] = true
		if n > 0 && vpn != prevPage {
			transitions++
			pageFreq.Observe(uint64(vpn))
		}
		prevPage = vpn
		if rec.HasLoad() {
			loads++
			dataPages[rec.Load.Page()] = true
		}
		if rec.HasStore() {
			stores++
			dataPages[rec.Store.Page()] = true
		}
		n++
	}
	if n == 0 {
		fatal("empty trace")
	}
	fmt.Printf("instructions      %d\n", n)
	fmt.Printf("loads             %d (%.1f%%)\n", loads, float64(loads)/float64(n)*100)
	fmt.Printf("stores            %d (%.1f%%)\n", stores, float64(stores)/float64(n)*100)
	fmt.Printf("code pages        %d (%.1f MB)\n", len(codePages), float64(len(codePages)*arch.PageSize)/1e6)
	fmt.Printf("data pages        %d (%.1f MB)\n", len(dataPages), float64(len(dataPages)*arch.PageSize)/1e6)
	fmt.Printf("page transitions  %d (every %.1f instructions)\n", transitions, float64(n)/float64(transitions+1))
	fmt.Printf("pages for 90%% of transitions: %d\n", pageFreq.PagesForCoverage(90))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceinfo: "+format+"\n", args...)
	os.Exit(1)
}
