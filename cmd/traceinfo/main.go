// Command traceinfo inspects a trace file: instruction counts, memory
// operation mix, code/data footprints and page-transition statistics.
//
// Example:
//
//	traceinfo srv07.mgt.gz
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"morrigan"
	"morrigan/internal/arch"
	"morrigan/internal/stats"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo <trace-file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	r, err := morrigan.NewTraceFileReader(f)
	if err != nil {
		fatal("%v", err)
	}

	var (
		rec         morrigan.TraceRecord
		n           uint64
		loads       uint64
		stores      uint64
		transitions uint64
		prevPage    arch.VPN
		codePages   = map[arch.VPN]bool{}
		dataPages   = map[arch.VPN]bool{}
		pageFreq    = stats.NewPageFrequency()
	)
	for {
		err := r.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal("reading record %d: %v", n, err)
		}
		vpn := rec.PC.Page()
		codePages[vpn] = true
		if n > 0 && vpn != prevPage {
			transitions++
			pageFreq.Observe(uint64(vpn))
		}
		prevPage = vpn
		if rec.HasLoad() {
			loads++
			dataPages[rec.Load.Page()] = true
		}
		if rec.HasStore() {
			stores++
			dataPages[rec.Store.Page()] = true
		}
		n++
	}
	if n == 0 {
		fatal("empty trace")
	}
	fmt.Printf("instructions      %d\n", n)
	fmt.Printf("loads             %d (%.1f%%)\n", loads, float64(loads)/float64(n)*100)
	fmt.Printf("stores            %d (%.1f%%)\n", stores, float64(stores)/float64(n)*100)
	fmt.Printf("code pages        %d (%.1f MB)\n", len(codePages), float64(len(codePages)*arch.PageSize)/1e6)
	fmt.Printf("data pages        %d (%.1f MB)\n", len(dataPages), float64(len(dataPages)*arch.PageSize)/1e6)
	fmt.Printf("page transitions  %d (every %.1f instructions)\n", transitions, float64(n)/float64(transitions+1))
	fmt.Printf("pages for 90%% of transitions: %d\n", pageFreq.PagesForCoverage(90))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceinfo: "+format+"\n", args...)
	os.Exit(1)
}
