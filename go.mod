module morrigan

go 1.22
