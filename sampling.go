package morrigan

import (
	"morrigan/internal/obs"
	"morrigan/internal/sampling"
)

// Representative-interval sampling (see internal/sampling). A sampled
// campaign job profiles its workload through a cheap functional model, picks
// representative intervals with deterministic k-means clustering, simulates
// only those slices in the timing model (fast-forwarding between them with
// functional TLB/page-table warmup), and extrapolates whole-run statistics
// with per-metric 95% confidence intervals. Attach a SamplingPolicy to
// CampaignJob.Sampling (or ExperimentOptions.Sampling) to enable it.
type (
	// SamplingPolicy parameterises representative-interval sampling.
	SamplingPolicy = sampling.Policy
	// SamplingOutcome describes how a sampled estimate was produced: the
	// policy, the slice set, the instruction budget actually timed, and
	// the 95% confidence intervals around the extrapolated stats.
	SamplingOutcome = sampling.Outcome
	// SamplingCI holds per-metric 95% confidence half-widths.
	SamplingCI = sampling.CI
	// SamplingProfileStore caches workload profiling artifacts on disk so
	// repeated sampled campaigns skip the functional profiling pass.
	SamplingProfileStore = sampling.ProfileStore
)

// DefaultSamplingPolicy returns a policy suited to the experiment harness's
// default scales: 100k-instruction intervals, 8 clusters, 25k slice warmup.
func DefaultSamplingPolicy() SamplingPolicy { return sampling.DefaultPolicy() }

// OpenSamplingProfileStore opens (creating if needed) a profile-artifact
// store rooted at dir; pass it via CampaignOptions.Profiles (or
// ExperimentOptions.Profiles).
func OpenSamplingProfileStore(dir string) (*SamplingProfileStore, error) {
	return sampling.OpenProfileStore(dir)
}

// SamplingGauges returns an observability gauge source publishing
// process-wide sampling counters (sampled runs, timed vs fast-forwarded
// instructions) plus, when profiles is non-nil, the profile store's
// built/reused artifact counts. Wire it into an ObservabilityServer with
// AddGaugeSource.
func SamplingGauges(profiles *SamplingProfileStore) func() []obs.Gauge {
	return func() []obs.Gauge {
		t := sampling.Totals()
		gs := []obs.Gauge{
			{Name: "morrigan_sampling_runs_total", Help: "Sampled simulations completed by this process.", Value: float64(t.SampledRuns)},
			{Name: "morrigan_sampling_timed_instructions_total", Help: "Instructions timing-simulated inside measured slices of sampled runs.", Value: float64(t.TimedInstructions)},
			{Name: "morrigan_sampling_fastforwarded_instructions_total", Help: "Instructions fast-forwarded functionally between slices of sampled runs.", Value: float64(t.FastForwarded)},
		}
		if profiles != nil {
			gs = append(gs,
				obs.Gauge{Name: "morrigan_sampling_profiles_built_total", Help: "Sampling profile artifacts built by this process.", Value: float64(profiles.Built())},
				obs.Gauge{Name: "morrigan_sampling_profiles_reused_total", Help: "Sampling profile artifacts served from the on-disk store.", Value: float64(profiles.Reused())},
			)
		}
		return gs
	}
}
