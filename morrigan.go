// Package morrigan is a from-scratch reproduction of "Morrigan: A Composite
// Instruction TLB Prefetcher" (Vavouliotis, Alvarez, Grot, Jiménez, Casas —
// MICRO 2021). It provides:
//
//   - the Morrigan prefetcher itself: the IRIP ensemble of table-based
//     Markov prefetchers with the RLFU replacement policy, plus the Small
//     Delta Prefetcher (SDP), both exploiting page table locality;
//   - every baseline the paper compares against: the Sequential, Arbitrary
//     Stride, Distance and Markov dSTLB prefetchers, idealized unbounded
//     Markov variants, ASAP-style walk acceleration, prefetching directly
//     into the STLB, enlarged STLBs, and an FNL+MMA-style instruction cache
//     prefetcher;
//   - the simulation substrate they need: a trace-driven timing simulator
//     with an x86-64 radix page table, page-structure caches, a page table
//     walker, multi-level TLBs, a cache hierarchy and an interval-analysis
//     core model with SMT colocation support;
//   - a synthetic server-workload generator calibrated to the paper's
//     measured iSTLB miss-stream properties, a binary trace file format,
//     and the 45-workload "QMM-like" evaluation suite;
//   - an experiment harness that regenerates every table and figure of the
//     paper's evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// # Quick start
//
//	w, _ := morrigan.WorkloadByName("qmm-srv-07")
//	cfg := morrigan.DefaultConfig()
//	cfg.Prefetcher = morrigan.NewMorrigan(morrigan.DefaultPrefetcherConfig())
//	s, err := morrigan.NewSimulator(cfg, []morrigan.ThreadSpec{{Reader: w.NewReader()}})
//	if err != nil { ... }
//	stats, err := s.Run(1_000_000, 5_000_000) // warmup, measure
//	fmt.Println(stats.IPC, stats.ISTLBMPKI, stats.PBHits)
//
// The package root re-exports the library's stable surface; the
// implementation lives under internal/.
package morrigan

import (
	"io"

	"morrigan/internal/arch"
	"morrigan/internal/core"
	"morrigan/internal/icache"
	"morrigan/internal/machine"
	"morrigan/internal/sim"
	"morrigan/internal/tlbprefetch"
	"morrigan/internal/trace"
	"morrigan/internal/workloads"
)

// Architectural types.
type (
	// VPN is a virtual page number.
	VPN = arch.VPN
	// VAddr is a virtual address.
	VAddr = arch.VAddr
	// ThreadID identifies a hardware (SMT) thread.
	ThreadID = arch.ThreadID
	// Cycle is a simulation timestamp in core clock cycles.
	Cycle = arch.Cycle
)

// Simulator types.
type (
	// Config describes one simulated machine (Table 1 of the paper).
	Config = sim.Config
	// Stats is the measurement snapshot of a simulation interval.
	Stats = sim.Stats
	// Simulator drives instruction traces through the simulated machine.
	Simulator = sim.Simulator
	// ThreadSpec binds a hardware thread to an instruction stream.
	ThreadSpec = sim.ThreadSpec
	// PageTableKind selects the page-table organisation (Section 4.3).
	PageTableKind = sim.PageTableKind
)

// Page table organisations.
const (
	// PageTableRadix4 is the default x86-64 4-level radix tree.
	PageTableRadix4 = sim.PageTableRadix4
	// PageTableRadix5 adds the PML5 level (5-level paging).
	PageTableRadix5 = sim.PageTableRadix5
	// PageTableHashed is a clustered hashed page table.
	PageTableHashed = sim.PageTableHashed
)

// Prefetcher types.
type (
	// Prefetcher is the STLB prefetch engine interface.
	Prefetcher = tlbprefetch.Prefetcher
	// Request is one prefetch candidate.
	Request = tlbprefetch.Request
	// MorriganPrefetcher is the paper's composite prefetcher (IRIP + SDP).
	MorriganPrefetcher = core.Morrigan
	// PrefetcherConfig parameterises Morrigan.
	PrefetcherConfig = core.Config
	// TableConfig sizes one IRIP prediction table.
	TableConfig = core.TableConfig
	// Policy selects the prediction tables' replacement policy.
	Policy = core.Policy
)

// Replacement policies for the IRIP prediction tables.
const (
	PolicyRLFU   = core.PolicyRLFU
	PolicyLFU    = core.PolicyLFU
	PolicyLRU    = core.PolicyLRU
	PolicyRandom = core.PolicyRandom
)

// Workload and trace types.
type (
	// Workload names a benchmark and its generator parameters.
	Workload = workloads.Spec
	// TraceReader produces instruction records.
	TraceReader = trace.Reader
	// TraceRecord is one executed instruction.
	TraceRecord = trace.Record
	// TraceParams configures the synthetic server-workload generator.
	TraceParams = trace.ServerParams
)

// DefaultConfig returns the paper's Table 1 system configuration with no
// STLB prefetching and a next-line I-cache prefetcher.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Machine specs: declarative, JSON-serialisable machine descriptions with a
// stable content hash. A spec is pure data — Build turns it into a live
// Config (fresh prefetcher state and all), and Hash gives campaigns a
// machine identity for checkpointing and cross-experiment result reuse.
type (
	// MachineSpec describes one simulated machine as data.
	MachineSpec = machine.Spec
	// MachinePrefetcherSpec selects and parameterises an iSTLB prefetcher.
	MachinePrefetcherSpec = machine.PrefetcherSpec
	// MachineICacheSpec selects and parameterises an I-cache prefetcher.
	MachineICacheSpec = machine.ICacheSpec
	// MorriganSpec parameterises the Morrigan prefetcher as data.
	MorriganSpec = machine.MorriganSpec
)

// DefaultMachineSpec returns the Table 1 machine as a declarative spec;
// DefaultMachineSpec().Build() is equivalent to DefaultConfig().
func DefaultMachineSpec() MachineSpec { return machine.Default() }

// MorriganMachineSpec returns the Morrigan prefetcher spec for cfg.
func MorriganMachineSpec(cfg PrefetcherConfig) MachinePrefetcherSpec { return machine.Morrigan(cfg) }

// Machine-spec constructors for the named prefetchers — the same vocabulary
// as the New* constructors above, but as data.

// SPSpec is the Sequential Prefetcher as a spec.
func SPSpec() MachinePrefetcherSpec { return machine.SP() }

// ASPSpec is the Arbitrary Stride Prefetcher as a spec.
func ASPSpec(entries int) MachinePrefetcherSpec { return machine.ASP(entries) }

// DPSpec is the Distance Prefetcher as a spec.
func DPSpec(entries int) MachinePrefetcherSpec { return machine.DP(entries) }

// MPSpec is the Markov Prefetcher as a spec.
func MPSpec(entries, ways int) MachinePrefetcherSpec { return machine.MP(entries, ways) }

// UnboundedMPSpec is the Section 3.4 idealization as a spec; maxSucc <= 0
// means unlimited successors per entry.
func UnboundedMPSpec(maxSucc int) MachinePrefetcherSpec { return machine.UnboundedMP(maxSucc) }

// FNLMMASpec is the FNL+MMA-style I-cache prefetcher as a spec.
func FNLMMASpec() MachineICacheSpec { return machine.FNLMMA() }

// EPISpec is the entangling-style I-cache prefetcher as a spec.
func EPISpec() MachineICacheSpec { return machine.EPI() }

// DJoltSpec is the D-Jolt-style I-cache prefetcher as a spec.
func DJoltSpec() MachineICacheSpec { return machine.DJolt() }

// LoadMachineSpec parses a machine spec from its JSON form, rejecting
// unknown fields and specs that fail validation.
func LoadMachineSpec(r io.Reader) (MachineSpec, error) { return machine.Load(r) }

// SaveMachineSpec serialises a machine spec as JSON readable by
// LoadMachineSpec.
func SaveMachineSpec(w io.Writer, s MachineSpec) error { return machine.Save(w, s) }

// NewSimulator builds a simulator over one or two threads.
func NewSimulator(cfg Config, threads []ThreadSpec) (*Simulator, error) {
	return sim.New(cfg, threads)
}

// NewMorrigan builds the composite prefetcher from cfg.
func NewMorrigan(cfg PrefetcherConfig) *MorriganPrefetcher { return core.New(cfg) }

// DefaultPrefetcherConfig returns the paper's selected 3.76 KB Morrigan
// configuration (Section 6.1.3).
func DefaultPrefetcherConfig() PrefetcherConfig { return core.DefaultConfig() }

// MonoPrefetcherConfig returns the single-table Morrigan-mono ablation of
// Section 6.3.
func MonoPrefetcherConfig() PrefetcherConfig { return core.MonoConfig() }

// ScaledPrefetcherConfig scales the default table sizes by factor (the
// storage-budget sweeps of Figures 13/14 and the SMT doubling of Section
// 6.6).
func ScaledPrefetcherConfig(factor float64) PrefetcherConfig { return core.ScaledConfig(factor) }

// Baseline dSTLB prefetchers (Section 2.1).

// NewSP returns the Sequential Prefetcher.
func NewSP() Prefetcher { return &tlbprefetch.SP{} }

// NewASP returns the Arbitrary Stride Prefetcher with the given table size.
func NewASP(entries int) Prefetcher { return tlbprefetch.NewASP(entries) }

// NewDP returns the Distance Prefetcher with the given table size.
func NewDP(entries int) Prefetcher { return tlbprefetch.NewDP(entries) }

// NewMP returns the Markov Prefetcher with the given geometry.
func NewMP(entries, ways int) Prefetcher { return tlbprefetch.NewMP(entries, ways) }

// NewUnboundedMP returns the Section 3.4 idealization; maxSucc <= 0 means
// unlimited successors per entry.
func NewUnboundedMP(maxSucc int) Prefetcher { return tlbprefetch.NewUnboundedMP(maxSucc) }

// I-cache prefetchers (Sections 3.5 and 6.5).
type (
	// ICachePrefetcher produces instruction-cache prefetch candidates.
	ICachePrefetcher = icache.Prefetcher
)

// NewNextLinePrefetcher returns the baseline next-line I-cache prefetcher,
// which never crosses page boundaries.
func NewNextLinePrefetcher() ICachePrefetcher { return icache.NextLine{} }

// NewFNLMMA returns the FNL+MMA-style page-crossing I-cache prefetcher (the
// IPC-1 winner the paper carries into Sections 6.5/6.6).
func NewFNLMMA() ICachePrefetcher { return icache.DefaultFNLMMA() }

// NewEPI returns the entangling-style I-cache prefetcher, one of the IPC-1
// top performers of the Section 3.5 selection study.
func NewEPI() ICachePrefetcher { return icache.DefaultEPI() }

// NewDJolt returns the D-Jolt-style I-cache prefetcher, one of the IPC-1
// top performers of the Section 3.5 selection study.
func NewDJolt() ICachePrefetcher { return icache.DefaultDJolt() }

// Workload suites (Section 5).

// QMMWorkloads returns the 45 QMM-like server workloads of the evaluation.
func QMMWorkloads() []Workload { return workloads.QMM() }

// SPECWorkloads returns the SPEC-CPU-like small-footprint workloads.
func SPECWorkloads() []Workload { return workloads.SPEC() }

// JavaWorkloads returns the Java-server-like workloads of Figure 2.
func JavaWorkloads() []Workload { return workloads.Java() }

// SMTWorkloadPairs draws n deterministic colocation pairs (Section 6.6).
func SMTWorkloadPairs(n int, seed int64) [][2]Workload { return workloads.SMTPairs(n, seed) }

// WorkloadByName finds a workload in any built-in suite.
func WorkloadByName(name string) (Workload, bool) { return workloads.ByName(name) }

// NewServerTrace builds a synthetic server instruction stream from params;
// the stream is infinite and deterministic for a fixed seed.
func NewServerTrace(params TraceParams) TraceReader { return trace.NewServerGenerator(params) }
