// Benchmarks regenerating each of the paper's tables and figures at a
// reduced (benchmark-friendly) scale, plus microbenchmarks of the core
// components. Run the full-scale experiments with cmd/experiments.
package morrigan_test

import (
	"strconv"
	"strings"
	"testing"

	"morrigan"
)

// benchExperiment runs one experiment at quick scale per iteration and
// reports the first numeric cell of the last row as a metric when present.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opt := morrigan.QuickExperimentOptions()
	var tab *morrigan.ExperimentTable
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = morrigan.RunExperiment(id, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	if tab != nil && len(tab.Rows) > 0 {
		last := tab.Rows[len(tab.Rows)-1]
		for _, cell := range last[1:] {
			v, perr := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
			if perr == nil {
				b.ReportMetric(v, "result")
				break
			}
		}
	}
}

// One benchmark per reproduced table/figure (see DESIGN.md experiment
// index).

func BenchmarkTable1Baseline(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkFig2JavaMPKI(b *testing.B)          { benchExperiment(b, "fig2") }
func BenchmarkFig3FrontEndMPKI(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig4TranslationCycles(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5DeltaCDF(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig6PageSkew(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig7Successors(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkFig8SuccessorProb(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9DSTLBPrefetchers(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10ICachePrefetch(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig13CoverageBudget(b *testing.B)   { benchExperiment(b, "fig13") }
func BenchmarkFig14Replacement(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkSec613PBSize(b *testing.B)          { benchExperiment(b, "sec613") }
func BenchmarkFig15ISOComparison(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16WalkReferences(b *testing.B)   { benchExperiment(b, "fig16") }
func BenchmarkFig17Mono(b *testing.B)             { benchExperiment(b, "fig17") }
func BenchmarkFig18OtherApproaches(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFig19Synergy(b *testing.B)          { benchExperiment(b, "fig19") }
func BenchmarkFig20SMT(b *testing.B)              { benchExperiment(b, "fig20") }
func BenchmarkAblations(b *testing.B)             { benchExperiment(b, "ablations") }
func BenchmarkPageTables(b *testing.B)            { benchExperiment(b, "pagetables") }
func BenchmarkContextSwitch(b *testing.B)         { benchExperiment(b, "contextswitch") }
func BenchmarkHugePages(b *testing.B)             { benchExperiment(b, "hugepages") }
func BenchmarkICacheSelection(b *testing.B)       { benchExperiment(b, "icacheselect") }

// Component microbenchmarks.

// BenchmarkSimulatorThroughput measures end-to-end simulated instructions
// per second with Morrigan attached.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w := morrigan.QMMWorkloads()[10]
	cfg := morrigan.DefaultConfig()
	cfg.Prefetcher = morrigan.NewMorrigan(morrigan.DefaultPrefetcherConfig())
	s, err := morrigan.NewSimulator(cfg, []morrigan.ThreadSpec{{Reader: w.NewReader()}})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Run(100_000, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := s.Run(0, uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N), "instructions")
}

// BenchmarkSimulatorTelemetry is BenchmarkSimulatorThroughput with a
// telemetry probe attached — comparing the two bounds the observability
// overhead on the enabled path (the disabled path is a nil check).
func BenchmarkSimulatorTelemetry(b *testing.B) {
	w := morrigan.QMMWorkloads()[10]
	cfg := morrigan.DefaultConfig()
	cfg.Prefetcher = morrigan.NewMorrigan(morrigan.DefaultPrefetcherConfig())
	cfg.Probe = morrigan.NewTelemetryProbe(morrigan.DefaultTelemetryConfig())
	s, err := morrigan.NewSimulator(cfg, []morrigan.ThreadSpec{{Reader: w.NewReader()}})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Run(100_000, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := s.Run(0, uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N), "instructions")
}

// BenchmarkTraceGeneration measures synthetic trace production speed.
func BenchmarkTraceGeneration(b *testing.B) {
	gen := morrigan.NewServerTrace(morrigan.QMMWorkloads()[0].Params)
	var rec morrigan.TraceRecord
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := gen.Next(&rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMorriganOnMiss measures the prefetcher's per-miss cost on a
// recorded miss stream.
func BenchmarkMorriganOnMiss(b *testing.B) {
	m := morrigan.NewMorrigan(morrigan.DefaultPrefetcherConfig())
	// A synthetic miss stream with warm-page structure.
	stream := make([]morrigan.VPN, 4096)
	for i := range stream {
		stream[i] = morrigan.VPN(0x400 + (i*37)%600)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vpn := stream[i%len(stream)]
		m.OnMiss(0, 0, vpn)
	}
}

// BenchmarkTraceFileWrite measures trace serialisation throughput.
func BenchmarkTraceFileWrite(b *testing.B) {
	gen := morrigan.NewServerTrace(morrigan.QMMWorkloads()[0].Params)
	recs := make([]morrigan.TraceRecord, 10000)
	for i := range recs {
		if err := gen.Next(&recs[i]); err != nil {
			b.Fatal(err)
		}
	}
	w, err := morrigan.NewTraceWriter(discard{}, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(&recs[i%len(recs)]); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
