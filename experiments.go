package morrigan

import (
	"context"
	"fmt"
	"io"

	"morrigan/internal/experiments"
	"morrigan/internal/runner"
	"morrigan/internal/trace"
	"morrigan/internal/workloads"
)

// Experiment harness types.
type (
	// ExperimentOptions scales an experiment run.
	ExperimentOptions = experiments.Options
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = experiments.Table
)

// Experiment option presets.
var (
	// DefaultExperimentOptions finishes in minutes on one core.
	DefaultExperimentOptions = experiments.DefaultOptions
	// QuickExperimentOptions is for benchmarks and smoke tests.
	QuickExperimentOptions = experiments.QuickOptions
	// FullExperimentOptions approaches the paper's methodology.
	FullExperimentOptions = experiments.FullOptions
)

// ExperimentIDs lists the reproducible tables and figures in paper order.
func ExperimentIDs() []string {
	out := make([]string, len(experiments.Order))
	copy(out, experiments.Order)
	return out
}

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentTable, error) {
	fn, ok := experiments.Registry[id]
	if !ok {
		return nil, fmt.Errorf("morrigan: unknown experiment %q (see ExperimentIDs)", id)
	}
	return fn(opt)
}

// Campaign orchestration (see internal/runner). A campaign is a set of
// independent simulation jobs fanned out over a bounded worker pool with
// results returned in deterministic job order.
type (
	// CampaignJob is one independent simulation of a campaign.
	CampaignJob = runner.Job
	// CampaignResult is the outcome of one job.
	CampaignResult = runner.Result
	// CampaignOptions bounds worker count, per-job timeouts and progress.
	CampaignOptions = runner.Options
	// CampaignRecord is one job's machine-readable result.
	CampaignRecord = runner.Record
	// Campaign is the schema-versioned collection of campaign results,
	// with JSON and CSV emitters.
	Campaign = runner.Campaign
	// CampaignRecorder collects results across campaigns; its zero value
	// is ready to use.
	CampaignRecorder = runner.Recorder
	// CampaignEvent is one progress notification.
	CampaignEvent = runner.Event
	// CampaignProgress receives progress notifications.
	CampaignProgress = runner.ProgressFunc
	// CampaignJournal is an append-only checkpoint of completed simulations
	// that lets an interrupted campaign resume without re-simulating.
	CampaignJournal = runner.Journal
	// CampaignResultCache deduplicates identical (machine, workloads, scale)
	// jobs across the campaigns of one process.
	CampaignResultCache = runner.ResultCache
)

// CampaignSchemaVersion identifies the JSON/CSV result schema.
const CampaignSchemaVersion = runner.SchemaVersion

// SMTVAOffset is the per-thread virtual-address-space offset campaigns apply
// to colocated SMT workloads: thread i's stream is shifted by i*SMTVAOffset.
const SMTVAOffset = runner.SMTVAOffset

// RunCampaign executes the jobs over a worker pool and returns one result per
// job, in job order; see CampaignOptions. A nil ctx means context.Background().
func RunCampaign(ctx context.Context, jobs []CampaignJob, opt CampaignOptions) ([]CampaignResult, error) {
	return runner.Run(ctx, jobs, opt)
}

// CampaignWriterProgress returns a progress function printing one line per
// completed job, with campaign progress and an ETA, to w.
func CampaignWriterProgress(w io.Writer) CampaignProgress { return runner.WriterProgress(w) }

// OpenCampaignJournal opens (or, with resume, reloads) a checkpoint journal
// at path. With resume set, previously journaled results are served without
// re-simulating; a torn final record from a crash is discarded. Close it
// when the campaign ends.
func OpenCampaignJournal(path string, resume bool) (*CampaignJournal, error) {
	return runner.OpenJournal(path, resume)
}

// NewCampaignResultCache returns an empty cross-campaign result cache; pass
// it via CampaignOptions.Cache (or ExperimentOptions.Cache) so identical
// jobs simulate once per process.
func NewCampaignResultCache() *CampaignResultCache { return runner.NewResultCache() }

// NewCampaignRecord converts one campaign result into its machine-readable
// form.
func NewCampaignRecord(res CampaignResult) CampaignRecord { return runner.NewRecord(res) }

// Trace file I/O.

// NewTraceWriter serialises records to the binary trace format; Close must
// be called to flush. Set compress for gzip output.
func NewTraceWriter(w io.Writer, compress bool) (*trace.Writer, error) {
	return trace.NewWriter(w, compress)
}

// NewTraceFileReader decodes a trace file written by NewTraceWriter,
// transparently handling gzip.
func NewTraceFileReader(r io.Reader) (TraceReader, error) {
	return trace.NewFileReader(r)
}

// LimitTrace caps a trace at n records (it then reports io.EOF).
func LimitTrace(r TraceReader, n uint64) TraceReader { return trace.Limit(r, n) }

// LoadWorkloadSpec parses a user-defined workload from its JSON form (see
// the workloads package documentation for the schema).
func LoadWorkloadSpec(r io.Reader) (Workload, error) { return workloads.LoadSpec(r) }

// SaveWorkloadSpec serialises a workload spec as JSON readable by
// LoadWorkloadSpec.
func SaveWorkloadSpec(w io.Writer, spec Workload) error { return workloads.SaveSpec(w, spec) }
