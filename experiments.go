package morrigan

import (
	"fmt"
	"io"

	"morrigan/internal/experiments"
	"morrigan/internal/trace"
	"morrigan/internal/workloads"
)

// Experiment harness types.
type (
	// ExperimentOptions scales an experiment run.
	ExperimentOptions = experiments.Options
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = experiments.Table
)

// Experiment option presets.
var (
	// DefaultExperimentOptions finishes in minutes on one core.
	DefaultExperimentOptions = experiments.DefaultOptions
	// QuickExperimentOptions is for benchmarks and smoke tests.
	QuickExperimentOptions = experiments.QuickOptions
	// FullExperimentOptions approaches the paper's methodology.
	FullExperimentOptions = experiments.FullOptions
)

// ExperimentIDs lists the reproducible tables and figures in paper order.
func ExperimentIDs() []string {
	out := make([]string, len(experiments.Order))
	copy(out, experiments.Order)
	return out
}

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentTable, error) {
	fn, ok := experiments.Registry[id]
	if !ok {
		return nil, fmt.Errorf("morrigan: unknown experiment %q (see ExperimentIDs)", id)
	}
	return fn(opt)
}

// Trace file I/O.

// NewTraceWriter serialises records to the binary trace format; Close must
// be called to flush. Set compress for gzip output.
func NewTraceWriter(w io.Writer, compress bool) (*trace.Writer, error) {
	return trace.NewWriter(w, compress)
}

// NewTraceFileReader decodes a trace file written by NewTraceWriter,
// transparently handling gzip.
func NewTraceFileReader(r io.Reader) (TraceReader, error) {
	return trace.NewFileReader(r)
}

// LimitTrace caps a trace at n records (it then reports io.EOF).
func LimitTrace(r TraceReader, n uint64) TraceReader { return trace.Limit(r, n) }

// LoadWorkloadSpec parses a user-defined workload from its JSON form (see
// the workloads package documentation for the schema).
func LoadWorkloadSpec(r io.Reader) (Workload, error) { return workloads.LoadSpec(r) }

// SaveWorkloadSpec serialises a workload spec as JSON readable by
// LoadWorkloadSpec.
func SaveWorkloadSpec(w io.Writer, spec Workload) error { return workloads.SaveSpec(w, spec) }
