package morrigan

import (
	"morrigan/internal/service"
)

// Simulation-as-a-service: the multi-tenant HTTP job API over the campaign
// runner (see internal/service). A JobService accepts campaign submissions
// per tenant token, queues them fair-share, executes them through the shared
// reuse layers (cache, result store, optional fabric), and serves merged
// results; cmd/service and `morrigansim -serve-jobs` expose it as a daemon.
type (
	// JobService is the job-serving API core.
	JobService = service.Service
	// JobServiceOptions configures a JobService (tenants, queue bounds,
	// reuse layers, observer).
	JobServiceOptions = service.Options
	// ServiceTenant declares one tenant: bearer token plus admission quotas.
	ServiceTenant = service.TenantConfig
	// ServiceSubmission is the POST /api/v1/campaigns request body.
	ServiceSubmission = service.Submission
	// ServiceMachineEntry is one machine configuration of a submission's
	// sweep.
	ServiceMachineEntry = service.MachineEntry
	// ServiceCampaignStatus is a campaign's externally visible state.
	ServiceCampaignStatus = service.Status
	// ServiceUsage is one tenant's accounting snapshot.
	ServiceUsage = service.Usage
)

// NewJobService validates the tenant set and starts the dispatcher.
func NewJobService(opt JobServiceOptions) (*JobService, error) {
	return service.New(opt)
}

// ServiceCampaignID derives the canonical campaign id a tenant's submission
// maps to (identical resubmissions address the same campaign).
func ServiceCampaignID(tenant string, sub ServiceSubmission) string {
	return service.CampaignID(tenant, sub)
}
