package morrigan_test

import (
	"fmt"

	"morrigan"
)

// ExampleNewSimulator runs a server workload with Morrigan attached and
// inspects the measurement snapshot.
func ExampleNewSimulator() {
	workload, _ := morrigan.WorkloadByName("qmm-srv-30")

	cfg := morrigan.DefaultConfig() // the paper's Table 1 machine
	cfg.Prefetcher = morrigan.NewMorrigan(morrigan.DefaultPrefetcherConfig())

	sim, err := morrigan.NewSimulator(cfg, []morrigan.ThreadSpec{
		{Reader: workload.NewReader()},
	})
	if err != nil {
		panic(err)
	}
	stats, err := sim.Run(200_000, 800_000) // warmup, measure
	if err != nil {
		panic(err)
	}
	fmt.Println("measured all instructions:", stats.Instructions == 800_000)
	fmt.Println("iSTLB misses observed:", stats.ISTLBMisses > 0)
	fmt.Println("misses covered by the prefetch buffer:", stats.PBHits > 0)
	// Output:
	// measured all instructions: true
	// iSTLB misses observed: true
	// misses covered by the prefetch buffer: true
}

// ExampleNewMorrigan shows the prefetcher's storage accounting at the
// paper's design point.
func ExampleNewMorrigan() {
	m := morrigan.NewMorrigan(morrigan.DefaultPrefetcherConfig())
	fmt.Println(m.Name())
	fmt.Printf("%.0f bits across %d entries\n", float64(m.StorageBits()), m.Capacity())
	// Output:
	// Morrigan
	// 31104 bits across 448 entries
}
